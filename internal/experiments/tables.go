package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"expertfind/internal/baselines"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/pgindex"
	"expertfind/internal/sampling"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// Table2Result holds the effectiveness comparison of Table II for one
// dataset.
type Table2Result struct {
	Dataset string
	Rows    []Effectiveness
}

// RunTable2 reproduces Table II: the seven baselines and Ours
// (P-A-P ∩ P-T-P) on each dataset, measured by MAP, P@5/10/20 and ADS.
func RunTable2(sc Scale) []Table2Result {
	var out []Table2Result
	for _, spec := range Datasets() {
		ds, queries, ref := buildDataset(spec, sc)
		g := ds.Graph
		var rows []Effectiveness
		for _, m := range baselines.All(sc.Dim, sc.Seed) {
			if err := m.Build(g); err != nil {
				panic(err)
			}
			rows = append(rows, Evaluate(baselineSystem{m, g}, g, queries, sc.M, sc.N, ref))
		}
		ours := buildOurs(g, sc, nil)
		rows = append(rows, Evaluate(WrapEngine("Ours (PAP ∩ PTP)", ours), g, queries, sc.M, sc.N, ref))
		out = append(out, Table2Result{Dataset: spec.Name, Rows: rows})
	}
	return out
}

// FormatTable2 renders RunTable2 output.
func FormatTable2(res []Table2Result) string {
	var b strings.Builder
	for _, r := range res {
		b.WriteString(FormatEffectivenessTable("TABLE II — effectiveness, dataset "+r.Dataset, r.Rows, false))
		b.WriteByte('\n')
	}
	return b.String()
}

// CaseStudy is one column of Table III: the top experts of one query under
// one method, with ground-truth marks.
type CaseStudy struct {
	Method  string
	Query   string // truncated query text
	Topic   int
	Experts []string // "name (correct)" entries
	Correct int
}

// RunTable3 reproduces the Table III case study on the Aminer-like
// dataset: the top-5 experts of two queries from different topics, under
// the best baseline (GVNR-t) and Ours.
func RunTable3(sc Scale) []CaseStudy {
	ds, _, _ := buildDataset(Datasets()[0], sc)
	g := ds.Graph

	gv := baselines.NewGVNRT(sc.Dim, sc.Seed)
	if err := gv.Build(g); err != nil {
		panic(err)
	}
	ours := buildOurs(g, sc, nil)

	// Two queries from different topics, deterministically chosen.
	rng := rand.New(rand.NewSource(sc.Seed + 42))
	queries := ds.Queries(50, rng)
	var picks []dataset.Query
	seenTopic := map[int]bool{}
	for _, q := range queries {
		if !seenTopic[q.Topic] {
			seenTopic[q.Topic] = true
			picks = append(picks, q)
			if len(picks) == 2 {
				break
			}
		}
	}

	var out []CaseStudy
	systems := []System{baselineSystem{gv, g}, WrapEngine("Ours", ours)}
	for _, q := range picks {
		for _, sys := range systems {
			cs := CaseStudy{Method: sys.Name(), Query: truncate(q.Text, 48), Topic: q.Topic}
			for _, r := range sys.TopExperts(q.Text, sc.M, 5) {
				name := g.Label(r.Expert)
				if q.Truth[r.Expert] {
					name += " *"
					cs.Correct++
				}
				cs.Experts = append(cs.Experts, name)
			}
			out = append(out, cs)
		}
	}
	return out
}

// FormatTable3 renders RunTable3 output.
func FormatTable3(cases []CaseStudy) string {
	var b strings.Builder
	b.WriteString("TABLE III — case study (top-5 experts; * marks ground-truth experts)\n")
	for _, c := range cases {
		fmt.Fprintf(&b, "query topic %d (%q), method %s: %d/5 correct\n", c.Topic, c.Query, c.Method, c.Correct)
		for i, e := range c.Experts {
			fmt.Fprintf(&b, "  %d. %s\n", i+1, e)
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// metaPathConfig names one row of Table IV.
type metaPathConfig struct {
	Label string
	Paths []hetgraph.MetaPath
	// NoCore disables the (k,P)-core fine-tuning entirely.
	NoCore bool
}

func metaPathConfigs() []metaPathConfig {
	return []metaPathConfig{
		{Label: "w/o (k,P)-core", NoCore: true},
		{Label: "P-A-P (A)", Paths: []hetgraph.MetaPath{hetgraph.PAP}},
		{Label: "P-P (C)", Paths: []hetgraph.MetaPath{hetgraph.PP}},
		{Label: "P-T-P (T)", Paths: []hetgraph.MetaPath{hetgraph.PTP}},
		{Label: "AT", Paths: []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}},
		{Label: "AC", Paths: []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PP}},
		{Label: "CT", Paths: []hetgraph.MetaPath{hetgraph.PP, hetgraph.PTP}},
		{Label: "ACT", Paths: []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PP, hetgraph.PTP}},
	}
}

// RunTable4 reproduces Table IV: the effect of the meta-path choice (one,
// two, or three paths, and no core at all) on effectiveness, per dataset.
func RunTable4(sc Scale) []Table2Result {
	var out []Table2Result
	for _, spec := range Datasets() {
		ds, queries, ref := buildDataset(spec, sc)
		g := ds.Graph
		var rows []Effectiveness
		for _, cfg := range metaPathConfigs() {
			cfg := cfg
			e := buildOurs(g, sc, func(o *core.Options) {
				if cfg.NoCore {
					o.UseKPCore = core.Bool(false)
				} else {
					o.MetaPaths = cfg.Paths
				}
			})
			row := Evaluate(WrapEngine(cfg.Label, e), g, queries, sc.M, sc.N, ref)
			rows = append(rows, row)
		}
		out = append(out, Table2Result{Dataset: spec.Name, Rows: rows})
	}
	return out
}

// Table5Row is one negative-sampling strategy of Table V.
type Table5Row struct {
	Strategy  string
	MAP, P5   float64
	ADS       float64
	TrainTime time.Duration
	Triples   int
}

// RunTable5 reproduces Table V on the Aminer-like dataset: random
// negatives at 1:3 versus near negatives at ratios 1:1 through 1:4,
// reporting effectiveness and training cost.
func RunTable5(sc Scale) []Table5Row {
	ds, queries, ref := buildDataset(Datasets()[0], sc)
	g := ds.Graph
	type variant struct {
		label    string
		strategy sampling.Strategy
		s        int
	}
	variants := []variant{
		{"Random (1:3)", sampling.RandomNegative, 3},
		{"Near (1:1)", sampling.NearNegative, 1},
		{"Near (1:2)", sampling.NearNegative, 2},
		{"Near (1:3)", sampling.NearNegative, 3},
		{"Near (1:4)", sampling.NearNegative, 4},
	}
	var out []Table5Row
	for _, v := range variants {
		v := v
		e := buildOurs(g, sc, func(o *core.Options) {
			o.NegStrategy = v.strategy
			o.NegPerPos = v.s
			// Table V isolates the sampling strategy on the single
			// meta-path P-A-P, as in the paper's §VI-D setup.
			o.MetaPaths = []hetgraph.MetaPath{hetgraph.PAP}
		})
		eff := Evaluate(WrapEngine(v.label, e), g, queries, sc.M, sc.N, ref)
		st := e.Stats()
		out = append(out, Table5Row{
			Strategy:  v.label,
			MAP:       eff.MAP,
			P5:        eff.P5,
			ADS:       eff.ADS,
			TrainTime: st.CommunityTime + st.TrainTime,
			Triples:   st.Sampling.Triples,
		})
	}
	return out
}

// FormatTable5 renders RunTable5 output.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("TABLE V — negative-sampling strategy (Aminer-sim)\n")
	fmt.Fprintf(&b, "%-14s %7s %7s %7s %10s %9s\n", "Strategy", "MAP", "P@5", "ADS", "train", "triples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7.3f %7.3f %7.3f %10s %9d\n",
			r.Strategy, r.MAP, r.P5, r.ADS, r.TrainTime.Round(time.Millisecond), r.Triples)
	}
	return b.String()
}

// Table6Row is one corpus size of Table VI.
type Table6Row struct {
	Name        string
	Papers      int
	GraphEdges  int
	IndexEdges  int
	MemoryBytes int64
	BuildTime   time.Duration
}

// RunTable6 reproduces Table VI: PG-Index construction time and memory
// across shrinking corpora G, G1..G4, extracted as induced subgraphs of
// the original dataset (scale factors 1, 0.8, 0.4, 0.2, 0.1 of the paper
// set, as the paper extracts its sub-graphs from G). Embeddings come from
// the frozen encoder so only the index cost varies across rows.
func RunTable6(sc Scale) []Table6Row {
	factors := []struct {
		name string
		f    float64
	}{{"G", 1}, {"G1", 0.8}, {"G2", 0.4}, {"G3", 0.2}, {"G4", 0.1}}
	ds := dataset.Generate(dataset.AminerSim(sc.Papers))
	full := ds.Graph
	allPapers := full.NodesOfType(hetgraph.Paper)

	var out []Table6Row
	for _, fc := range factors {
		n := int(float64(len(allPapers)) * fc.f)
		if n < 10 {
			n = 10
		}
		g := full
		if n < len(allPapers) {
			sub, _, err := hetgraph.InducedSubgraph(full, allPapers[:n])
			if err != nil {
				panic(err)
			}
			g = sub
		}
		// One vocabulary/encoder per subgraph corpus keeps rows
		// self-contained, as each of the paper's sub-graphs would be.
		corpus := make([]string, 0, g.NumNodesOfType(hetgraph.Paper))
		for _, p := range g.NodesOfType(hetgraph.Paper) {
			corpus = append(corpus, g.Label(p))
		}
		subVocab := textenc.BuildVocab(corpus, textenc.VocabConfig{})
		enc := textenc.NewEncoder(subVocab, sc.Dim, sc.Seed)
		out = append(out, buildTable6Row(fc.name, g, enc, sc))
	}
	return out
}

// FormatTable6 renders RunTable6 output.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("TABLE VI — overhead of PG-Index (Aminer-sim)\n")
	fmt.Fprintf(&b, "%-6s %9s %11s %11s %10s %10s\n", "Corpus", "papers", "graph-edges", "index-edges", "mem(MB)", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %9d %11d %11d %10.2f %10s\n",
			r.Name, r.Papers, r.GraphEdges, r.IndexEdges,
			float64(r.MemoryBytes)/(1<<20), r.BuildTime.Round(time.Millisecond))
	}
	return b.String()
}

func buildTable6Row(name string, g *hetgraph.Graph, enc *textenc.Encoder, sc Scale) Table6Row {
	papers := g.NodesOfType(hetgraph.Paper)
	embs := make(map[hetgraph.NodeID]vec.Vec32, len(papers))
	for _, p := range papers {
		embs[p] = enc.Encode(g.Label(p))
	}
	t0 := time.Now()
	idx := pgindex.Build(embs, pgindex.Config{Refine: true, Seed: sc.Seed})
	dur := time.Since(t0)
	return Table6Row{
		Name:        name,
		Papers:      len(papers),
		GraphEdges:  g.NumEdges(),
		IndexEdges:  idx.NumEdges(),
		MemoryBytes: idx.MemoryBytes(),
		BuildTime:   dur,
	}
}
