package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"expertfind/internal/colstore"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/obs"
)

// The scale benchmark (BENCH_scale.json) answers the larger-than-RAM
// question: as the corpus grows 10^4 -> 10^6 papers, what does serving
// cost in resident memory and latency when the snapshot's columnar
// section is mmap'd versus heap-decoded? The engine is built without
// the PG-Index (UseKPCore and UsePGIndex off) so the measured residency
// is the embedding matrix itself, not index scaffolding — the paper's
// offline quality path is unchanged and benchmarked elsewhere.
//
// Methodology notes, in the name of honest numbers:
//
//   - RSS is sampled in-process from /proc/self/status. Each number is
//     a delta over a baseline taken right before the load, after
//     debug.FreeOSMemory() returned the allocator's free pages.
//   - The mmap mode runs FIRST at each size, so the heap mode cannot
//     warm anything for it.
//   - "Cold" is the first pass over the query set after the load;
//     "warm" aggregates two further passes. The snapshot was written by
//     this same process, so its pages may still be in the OS page
//     cache: cold mmap latencies measure first-touch page faults, not
//     necessarily disk reads. Major-fault deltas are reported so the
//     reader can tell which happened.
//   - Queries run the exact scan (no index), which eventually touches
//     every matrix row: the RSS-after-queries column shows what demand
//     paging faults in under a worst-case read pattern, while
//     RSS-after-load shows what the load itself costs. A mapped load
//     never touches the matrix pages (metadata columns are decoded via
//     the file, CRCs are verified by pread), so its RSS-after-load is
//     engine scaffolding — maps, vocabulary — not the corpus.

// ScaleModeStats is one (corpus size, materialisation mode) cell.
type ScaleModeStats struct {
	Mode   string `json:"mode"` // "mmap" or "heap"
	Mapped bool   `json:"mapped"`

	LoadMs float64 `json:"load_ms"`
	// RSS deltas over the pre-load baseline, bytes.
	RSSAfterLoadBytes    int64 `json:"rss_after_load_bytes"`
	RSSAfterQueriesBytes int64 `json:"rss_after_queries_bytes"`
	// MajorFaults is the majflt delta across the whole mode run; > 0
	// means the cold pass really did hit the disk.
	MajorFaults uint64 `json:"major_faults"`

	ColdP50Ms float64 `json:"cold_p50_ms"`
	ColdP99Ms float64 `json:"cold_p99_ms"`
	WarmP50Ms float64 `json:"warm_p50_ms"`
	WarmP99Ms float64 `json:"warm_p99_ms"`
}

// ScaleBenchPoint is one corpus size in the sweep.
type ScaleBenchPoint struct {
	Papers          int     `json:"papers"`
	BuildMs         float64 `json:"build_ms"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	SnapshotWriteMs float64 `json:"snapshot_write_ms"`
	// MatrixBytes is rows*dim*4 — the embedding payload the two modes
	// differ on.
	MatrixBytes int64 `json:"matrix_bytes"`

	Mmap ScaleModeStats `json:"mmap"`
	Heap ScaleModeStats `json:"heap"`
}

// ScaleBenchReport is the payload of BENCH_scale.json.
type ScaleBenchReport struct {
	Dataset  string            `json:"dataset"`
	Dim      int               `json:"dim"`
	Queries  int               `json:"queries"`
	ProcStat bool              `json:"procstat_available"`
	Points   []ScaleBenchPoint `json:"points"`
}

// RunScaleBench sweeps the corpus sizes, building, snapshotting, and
// then loading + querying each snapshot twice: columnar section mmap'd,
// then heap-decoded.
func RunScaleBench(sc Scale, sizes []int) ScaleBenchReport {
	rep := ScaleBenchReport{Dataset: "aminer-sim", Dim: sc.Dim, Queries: sc.Queries}
	_, rep.ProcStat = obs.ReadProcStat()

	dir, err := os.MkdirTemp("", "scalebench-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	for _, n := range sizes {
		pt := ScaleBenchPoint{Papers: n}
		ds := dataset.Generate(dataset.AminerSim(n))
		queries := ds.Queries(sc.Queries, rand.New(rand.NewSource(sc.Seed)))

		t0 := time.Now()
		eng, err := core.Build(ds.Graph, core.Options{
			Dim: sc.Dim, Seed: sc.Seed,
			UseKPCore: core.Bool(false), UsePGIndex: core.Bool(false),
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			panic(err)
		}
		pt.BuildMs = ms(time.Since(t0))
		pt.MatrixBytes = int64(len(eng.Embeddings)) * int64(sc.Dim) * 4

		snap := filepath.Join(dir, fmt.Sprintf("scale-%d.snap", n))
		t1 := time.Now()
		f, err := os.Create(snap)
		if err != nil {
			panic(err)
		}
		if err := eng.Save(f); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		pt.SnapshotWriteMs = ms(time.Since(t1))
		fi, err := os.Stat(snap)
		if err != nil {
			panic(err)
		}
		pt.SnapshotBytes = fi.Size()
		eng = nil // the built engine must not pollute the load baselines

		// mmap first, heap second: the order guarantees the heap pass
		// cannot have faulted anything in for the mapped pass.
		pt.Mmap = runScaleMode(snap, ds, queries, sc, colstore.ModeAuto, "mmap")
		pt.Heap = runScaleMode(snap, ds, queries, sc, colstore.ModeOff, "heap")

		os.Remove(snap)
		rep.Points = append(rep.Points, pt)
	}
	return rep
}

// runScaleMode loads the snapshot one way and measures it.
func runScaleMode(snap string, ds *dataset.Dataset, queries []dataset.Query,
	sc Scale, mode colstore.Mode, label string) ScaleModeStats {
	st := ScaleModeStats{Mode: label}
	debug.FreeOSMemory()
	base, _ := obs.ReadProcStat()

	t0 := time.Now()
	e, err := core.LoadFileWith(snap, ds.Graph, core.LoadOptions{Mmap: mode})
	if err != nil {
		panic(err)
	}
	st.LoadMs = ms(time.Since(t0))
	st.Mapped = e.SnapshotMapped()

	debug.FreeOSMemory() // drop decode transients before the RSS sample
	if s, ok := obs.ReadProcStat(); ok {
		st.RSSAfterLoadBytes = s.RSSBytes - base.RSSBytes
	}

	var cold, warm []time.Duration
	run := func(sink *[]time.Duration) {
		for _, q := range queries {
			t := time.Now()
			if _, _, err := e.TopExperts(q.Text, sc.M, sc.N); err != nil {
				panic(err)
			}
			*sink = append(*sink, time.Since(t))
		}
	}
	run(&cold)
	run(&warm)
	run(&warm)
	st.ColdP50Ms = durPercentile(cold, 0.50)
	st.ColdP99Ms = durPercentile(cold, 0.99)
	st.WarmP50Ms = durPercentile(warm, 0.50)
	st.WarmP99Ms = durPercentile(warm, 0.99)

	debug.FreeOSMemory()
	if s, ok := obs.ReadProcStat(); ok {
		st.RSSAfterQueriesBytes = s.RSSBytes - base.RSSBytes
		st.MajorFaults = s.MajorPageFaults - base.MajorPageFaults
	}
	if err := e.CloseSnapshot(); err != nil {
		panic(err)
	}
	debug.FreeOSMemory()
	return st
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FormatScaleBench renders the report as a human-readable table.
func FormatScaleBench(r ScaleBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale benchmark — %s, dim %d, %d queries (exact scan, no index)\n",
		r.Dataset, r.Dim, r.Queries)
	if !r.ProcStat {
		b.WriteString("  (no /proc on this platform: RSS and fault columns are zero)\n")
	}
	for _, p := range r.Points {
		fmt.Fprintf(&b, "\npapers %-9d build %.0fs  snapshot %s (matrix %s, write %.0f ms)\n",
			p.Papers, p.BuildMs/1000, fmtBytes(p.SnapshotBytes), fmtBytes(p.MatrixBytes),
			p.SnapshotWriteMs)
		for _, m := range []ScaleModeStats{p.Mmap, p.Heap} {
			fmt.Fprintf(&b, "  %-5s (mapped=%-5v) load %8.1f ms  rss +%s load / +%s queried  majflt %d\n",
				m.Mode, m.Mapped, m.LoadMs,
				fmtBytes(m.RSSAfterLoadBytes), fmtBytes(m.RSSAfterQueriesBytes), m.MajorFaults)
			fmt.Fprintf(&b, "        cold %8.2f ms p50 / %8.2f ms p99   warm %8.2f ms p50 / %8.2f ms p99\n",
				m.ColdP50Ms, m.ColdP99Ms, m.WarmP50Ms, m.WarmP99Ms)
		}
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// WriteJSON writes the report as indented JSON (the BENCH_scale.json
// format).
func (r ScaleBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
