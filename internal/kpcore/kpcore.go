// Package kpcore implements the (k,P)-core machinery of the paper: the
// optimised community search of Algorithm 1 (early pruning + community
// extension), the FastBCore baseline it improves on, the naive
// projection-based core decomposition (Batagelj-Zaversnik), and the
// multi-meta-path common sub-community of §V (Eq. 8).
//
// A (k,P)-core (Definition 5) is the maximal subgraph of the heterogeneous
// graph in which every paper has at least k P-neighbours via meta-path P.
// The searches below return the connected region of that core reachable
// from a seed paper, which is what the sampling stage consumes.
package kpcore

import (
	"fmt"
	"sort"

	"expertfind/internal/hetgraph"
)

// Community is the result of a (k,P)-core community search around a seed
// paper (Algorithm 1).
type Community struct {
	// Seed is the seed paper p_s the search started from.
	Seed hetgraph.NodeID
	// Core lists the strict (k,P)-core members reachable from the seed,
	// sorted by NodeID. The seed itself appears here only if it satisfies
	// the k-constraint.
	Core []hetgraph.NodeID
	// Members is Core plus the extension of §III-A: the seed and all its
	// P-neighbours, even those below the k-constraint. Sorted by NodeID.
	// Positive samples (Definition 6) are drawn from Members.
	Members []hetgraph.NodeID
	// Near lists papers that were touched by the search but pruned for
	// violating the k-constraint (Algorithm 1's delete queue D) and that
	// did not re-enter the community through the extension. They are the
	// near-negative pool of §III-B: close to the community yet outside
	// it. Sorted by NodeID.
	Near []hetgraph.NodeID
}

// Contains reports whether p is a member of the (extended) community.
func (c *Community) Contains(p hetgraph.NodeID) bool {
	i := sort.Search(len(c.Members), func(i int) bool { return c.Members[i] >= p })
	return i < len(c.Members) && c.Members[i] == p
}

// InCore reports whether p is a strict core member.
func (c *Community) InCore(p hetgraph.NodeID) bool {
	i := sort.Search(len(c.Core), func(i int) bool { return c.Core[i] >= p })
	return i < len(c.Core) && c.Core[i] == p
}

// Search runs Algorithm 1: the optimised (k,P)-core community search with
// early pruning of unpromising nodes and the community extension around the
// seed. The strict core it computes equals FastBCore's output (Theorem 1).
//
// It panics if seed is not a paper node or mp is not a paper-paper
// meta-path; k must be non-negative.
func Search(g *hetgraph.Graph, seed hetgraph.NodeID, k int, mp hetgraph.MetaPath) *Community {
	validate(g, seed, k, mp)

	// Phase 1 — candidate selection with early pruning. BFS from the seed,
	// but only expand the search space from papers whose global P-degree
	// meets the k-constraint; papers below it go straight to the near pool
	// (they can never be core members, Theorem 1).
	type cand struct {
		nbrs  []hetgraph.NodeID // Ψ[v]: all P-neighbours of v
		degIn int               // neighbours currently surviving in S
	}
	cands := map[hetgraph.NodeID]*cand{}
	visited := map[hetgraph.NodeID]bool{seed: true}
	var near []hetgraph.NodeID
	queue := []hetgraph.NodeID{seed}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		nbrs := g.PNeighbors(v, mp)
		if len(nbrs) < k {
			near = append(near, v)
			// Prune: do not expand from v — except from the seed itself,
			// otherwise a sub-k seed would strand the search before it
			// reaches the core its neighbourhood belongs to.
			if v != seed {
				continue
			}
		} else {
			cands[v] = &cand{nbrs: nbrs}
		}
		for _, u := range nbrs {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}

	// Phase 2 — unpromising nodes prune. Within the candidate set S, peel
	// papers whose surviving in-S degree drops below k, cascading removals
	// like a standard core decomposition.
	for _, c := range cands {
		for _, u := range c.nbrs {
			if _, ok := cands[u]; ok {
				c.degIn++
			}
		}
	}
	var peel []hetgraph.NodeID
	for v, c := range cands {
		if c.degIn < k {
			peel = append(peel, v)
		}
	}
	sort.Slice(peel, func(i, j int) bool { return peel[i] < peel[j] }) // determinism
	removed := map[hetgraph.NodeID]bool{}
	for len(peel) > 0 {
		v := peel[0]
		peel = peel[1:]
		if removed[v] {
			continue
		}
		removed[v] = true
		near = append(near, v)
		for _, u := range cands[v].nbrs {
			cu, ok := cands[u]
			if !ok || removed[u] {
				continue
			}
			cu.degIn--
			if cu.degIn == k-1 {
				peel = append(peel, u)
			}
		}
	}

	// Restrict to the connected region of the core around the seed: a
	// community containing p_s must be connected to it (through core
	// papers, or directly adjacent to the seed), otherwise any inter-area
	// bridge would hand back every dense blob of the graph.
	inCore := func(v hetgraph.NodeID) bool {
		c, ok := cands[v]
		return ok && !removed[v] && c != nil
	}
	coreNbrs := func(v hetgraph.NodeID) []hetgraph.NodeID { return cands[v].nbrs }
	core := coreComponent(g, seed, mp, inCore, coreNbrs)

	// Phase 3 — (k,P)-core extension: the community additionally keeps the
	// seed and every P-neighbour of the seed, relaxing the strict
	// k-constraint around p_s (§III-A, "our solution" optimisation 2).
	memberSet := map[hetgraph.NodeID]bool{seed: true}
	for _, v := range core {
		memberSet[v] = true
	}
	g.ForEachPNeighbor(seed, mp, func(u hetgraph.NodeID) bool {
		memberSet[u] = true
		return true
	})
	members := make([]hetgraph.NodeID, 0, len(memberSet))
	for v := range memberSet {
		members = append(members, v)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	// A pruned paper that the extension re-admitted is a member, not a
	// near negative — the two sets must stay disjoint or the sampler
	// could emit the same paper as positive and negative.
	kept := near[:0]
	for _, v := range near {
		if !memberSet[v] {
			kept = append(kept, v)
		}
	}
	near = kept
	sort.Slice(near, func(i, j int) bool { return near[i] < near[j] })
	near = dedupSorted(near)

	return &Community{Seed: seed, Core: core, Members: members, Near: near}
}

// FastBCore runs the extended baseline of [30] (§III-A): a labelled BFS
// that collects every paper reachable from the seed via path instances of
// mp — without the early-pruning optimisation — followed by iterative
// removal of papers violating the k-constraint. It returns the strict core,
// sorted by NodeID.
func FastBCore(g *hetgraph.Graph, seed hetgraph.NodeID, k int, mp hetgraph.MetaPath) []hetgraph.NodeID {
	validate(g, seed, k, mp)

	// Step 1 — labelled search: the whole P-connected component of seed.
	visited := map[hetgraph.NodeID]bool{seed: true}
	queue := []hetgraph.NodeID{seed}
	var comp []hetgraph.NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		comp = append(comp, v)
		g.ForEachPNeighbor(v, mp, func(u hetgraph.NodeID) bool {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
			return true
		})
	}

	// Step 2 — cleaning up: peel nodes below the k-constraint, then keep
	// the core region connected to the seed (the community containing
	// p_s, matching Algorithm 1's output).
	survivors, nbrs := peelComponent(g, comp, k, mp)
	return coreComponent(g, seed, mp,
		func(v hetgraph.NodeID) bool { return survivors[v] },
		func(v hetgraph.NodeID) []hetgraph.NodeID { return nbrs[v] })
}

// peelComponent removes papers with fewer than k surviving P-neighbours
// from the node set until a fixpoint, returning the surviving set and the
// cached P-neighbour lists.
func peelComponent(g *hetgraph.Graph, comp []hetgraph.NodeID, k int, mp hetgraph.MetaPath) (map[hetgraph.NodeID]bool, map[hetgraph.NodeID][]hetgraph.NodeID) {
	in := make(map[hetgraph.NodeID]bool, len(comp))
	for _, v := range comp {
		in[v] = true
	}
	deg := make(map[hetgraph.NodeID]int, len(comp))
	nbrs := make(map[hetgraph.NodeID][]hetgraph.NodeID, len(comp))
	for _, v := range comp {
		ns := g.PNeighbors(v, mp)
		nbrs[v] = ns
		d := 0
		for _, u := range ns {
			if in[u] {
				d++
			}
		}
		deg[v] = d
	}
	var queue []hetgraph.NodeID
	for _, v := range comp {
		if deg[v] < k {
			queue = append(queue, v)
		}
	}
	removed := map[hetgraph.NodeID]bool{}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if removed[v] {
			continue
		}
		removed[v] = true
		for _, u := range nbrs[v] {
			if !in[u] || removed[u] {
				continue
			}
			deg[u]--
			if deg[u] == k-1 {
				queue = append(queue, u)
			}
		}
	}
	survivors := make(map[hetgraph.NodeID]bool, len(comp))
	for _, v := range comp {
		if !removed[v] {
			survivors[v] = true
		}
	}
	return survivors, nbrs
}

// coreComponent returns, sorted, the members of the k-core connected to
// the seed through core nodes: the BFS over the core-induced subgraph
// seeded by the seed itself (when it is a core member) and by the seed's
// core P-neighbours (Example 4 expects the community of a sub-k seed to be
// its neighbouring core). inCore tests membership; coreNbrs returns the
// cached P-neighbours of a core node.
func coreComponent(g *hetgraph.Graph, seed hetgraph.NodeID, mp hetgraph.MetaPath,
	inCore func(hetgraph.NodeID) bool, coreNbrs func(hetgraph.NodeID) []hetgraph.NodeID) []hetgraph.NodeID {
	visited := map[hetgraph.NodeID]bool{}
	var queue []hetgraph.NodeID
	push := func(v hetgraph.NodeID) {
		if inCore(v) && !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	push(seed)
	g.ForEachPNeighbor(seed, mp, func(u hetgraph.NodeID) bool {
		push(u)
		return true
	})
	var out []hetgraph.NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, u := range coreNbrs(v) {
			push(u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func validate(g *hetgraph.Graph, seed hetgraph.NodeID, k int, mp hetgraph.MetaPath) {
	if g.Type(seed) != hetgraph.Paper {
		panic(fmt.Sprintf("kpcore: seed %d is a %s, not a paper", seed, g.Type(seed)))
	}
	if !mp.IsPaperPaper() {
		panic(fmt.Sprintf("kpcore: meta-path %s is not paper-paper", mp))
	}
	if k < 0 {
		panic(fmt.Sprintf("kpcore: negative k %d", k))
	}
}

func dedupSorted(s []hetgraph.NodeID) []hetgraph.NodeID {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
