package kpcore

import (
	"sort"

	"expertfind/internal/hetgraph"
)

// SearchMulti runs the §V optimisation: for a seed paper it searches one
// (k,P)-core community per meta-path and intersects them (Eq. 8), yielding
// the common sub-community G^k_{P1..Pl} whose papers are cohesive under
// every relationship simultaneously.
//
// Core and Members of the result are the intersections of the per-path
// Core and Members sets; Near is the union of the per-path near pools (a
// paper close to any one community is a useful near negative). With a
// single meta-path it reduces exactly to Search.
func SearchMulti(g *hetgraph.Graph, seed hetgraph.NodeID, k int, mps []hetgraph.MetaPath) *Community {
	if len(mps) == 0 {
		panic("kpcore: SearchMulti needs at least one meta-path")
	}
	result := Search(g, seed, k, mps[0])
	for _, mp := range mps[1:] {
		next := Search(g, seed, k, mp)
		result.Core = intersectSorted(result.Core, next.Core)
		result.Members = intersectSorted(result.Members, next.Members)
		result.Near = unionSorted(result.Near, next.Near)
	}
	// The seed always remains a member: the extension step of each search
	// guarantees seed ∈ Members, so the intersection preserves it.
	return result
}

func intersectSorted(a, b []hetgraph.NodeID) []hetgraph.NodeID {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []hetgraph.NodeID) []hetgraph.NodeID {
	out := make([]hetgraph.NodeID, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupSorted(out)
}

// SearchMultiIndexed is SearchMulti answered from prebuilt CoreIndexes
// (one per meta-path, all with the same k): identical Core and Members,
// boundary-style near pools. Building the indexes once and calling this
// per seed amortises the projection across the f·|V(P)| seeds of the
// sampling stage.
func SearchMultiIndexed(idxs []*CoreIndex, seed hetgraph.NodeID) *Community {
	if len(idxs) == 0 {
		panic("kpcore: SearchMultiIndexed needs at least one index")
	}
	result := idxs[0].CommunityAround(seed)
	for _, idx := range idxs[1:] {
		next := idx.CommunityAround(seed)
		result.Core = intersectSorted(result.Core, next.Core)
		result.Members = intersectSorted(result.Members, next.Members)
		result.Near = unionSorted(result.Near, next.Near)
	}
	// Keep Near disjoint from the (possibly shrunken) member set.
	memberSet := map[hetgraph.NodeID]bool{}
	for _, v := range result.Members {
		memberSet[v] = true
	}
	kept := result.Near[:0]
	for _, v := range result.Near {
		if !memberSet[v] {
			kept = append(kept, v)
		}
	}
	result.Near = kept
	return result
}
