package kpcore

import (
	"sort"

	"expertfind/internal/hetgraph"
)

// CoreIndex precomputes, for one meta-path and one k, everything needed to
// answer (k,P)-core community queries for any seed in O(|community|):
// the projection's core membership and the connected components of the
// core-induced subgraph. The sampling stage issues f·|V(P)| community
// searches over the same graph; Algorithm 1 answers each from scratch,
// while the index pays one projection + decomposition and serves every
// seed afterwards — the batch counterpart DESIGN.md calls out.
type CoreIndex struct {
	g  *hetgraph.Graph
	mp hetgraph.MetaPath
	k  int

	// comp[p] is the core-component label of paper p (core members only);
	// -1 for papers outside the core.
	comp map[hetgraph.NodeID]int32
	// members[c] lists component c's papers, sorted.
	members [][]hetgraph.NodeID
	// boundary[c] lists the non-core papers P-adjacent to component c,
	// sorted: the index's near-negative pool. It generally differs from
	// Algorithm 1's delete-queue pool (which also holds sub-k papers met
	// during the labelled search), but serves the same purpose: papers
	// close to the community yet outside it.
	boundary [][]hetgraph.NodeID
}

// NewCoreIndex builds the index by projecting g along mp and decomposing
// it once.
func NewCoreIndex(g *hetgraph.Graph, k int, mp hetgraph.MetaPath) *CoreIndex {
	h := hetgraph.Project(g, mp)
	d := Decompose(h)

	idx := &CoreIndex{g: g, mp: mp, k: k, comp: make(map[hetgraph.NodeID]int32, len(h.Nodes))}
	inCore := func(p hetgraph.NodeID) bool { return d.CoreNumber[p] >= k }

	// Label the connected components of the core-induced subgraph.
	for _, p := range h.Nodes {
		if !inCore(p) {
			idx.comp[p] = -1
			continue
		}
		if _, done := idx.comp[p]; done {
			continue
		}
		label := int32(len(idx.members))
		var mems []hetgraph.NodeID
		bset := map[hetgraph.NodeID]bool{}
		queue := []hetgraph.NodeID{p}
		idx.comp[p] = label
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			mems = append(mems, v)
			for _, u := range h.Adj[v] {
				if !inCore(u) {
					bset[u] = true
					continue
				}
				if _, done := idx.comp[u]; !done {
					idx.comp[u] = label
					queue = append(queue, u)
				}
			}
		}
		sort.Slice(mems, func(i, j int) bool { return mems[i] < mems[j] })
		bnd := make([]hetgraph.NodeID, 0, len(bset))
		for v := range bset {
			bnd = append(bnd, v)
		}
		sort.Slice(bnd, func(i, j int) bool { return bnd[i] < bnd[j] })
		idx.members = append(idx.members, mems)
		idx.boundary = append(idx.boundary, bnd)
	}
	return idx
}

// K returns the index's cohesiveness threshold.
func (idx *CoreIndex) K() int { return idx.k }

// MetaPath returns the index's meta-path.
func (idx *CoreIndex) MetaPath() hetgraph.MetaPath { return idx.mp }

// NumComponents returns the number of connected core components.
func (idx *CoreIndex) NumComponents() int { return len(idx.members) }

// CoreNumberAtLeastK reports whether p is a member of the global
// (k,P)-core.
func (idx *CoreIndex) CoreNumberAtLeastK(p hetgraph.NodeID) bool {
	c, ok := idx.comp[p]
	return ok && c >= 0
}

// CommunityAround answers the same query as Search: the seed-connected
// core region, the extended member set (seed + its P-neighbours), and a
// near pool. Core and Members match Search exactly; Near is the community
// boundary (see the field comment).
func (idx *CoreIndex) CommunityAround(seed hetgraph.NodeID) *Community {
	// Collect the core components the seed belongs to or touches.
	compSet := map[int32]bool{}
	if c, ok := idx.comp[seed]; ok && c >= 0 {
		compSet[c] = true
	}
	memberSet := map[hetgraph.NodeID]bool{seed: true}
	idx.g.ForEachPNeighbor(seed, idx.mp, func(u hetgraph.NodeID) bool {
		memberSet[u] = true
		if c, ok := idx.comp[u]; ok && c >= 0 {
			compSet[c] = true
		}
		return true
	})

	var core []hetgraph.NodeID
	nearSet := map[hetgraph.NodeID]bool{}
	for c := range compSet {
		core = append(core, idx.members[c]...)
		for _, v := range idx.boundary[c] {
			nearSet[v] = true
		}
	}
	sort.Slice(core, func(i, j int) bool { return core[i] < core[j] })
	for _, v := range core {
		memberSet[v] = true
	}

	members := make([]hetgraph.NodeID, 0, len(memberSet))
	for v := range memberSet {
		members = append(members, v)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	near := make([]hetgraph.NodeID, 0, len(nearSet))
	for v := range nearSet {
		if !memberSet[v] {
			near = append(near, v)
		}
	}
	sort.Slice(near, func(i, j int) bool { return near[i] < near[j] })

	return &Community{Seed: seed, Core: core, Members: members, Near: near}
}
