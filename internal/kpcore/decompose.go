package kpcore

import (
	"sort"

	"expertfind/internal/hetgraph"
)

// Decomposition holds the full core decomposition of a homogeneous
// projection: for every paper its core number (the largest k such that the
// paper belongs to the k-core).
type Decomposition struct {
	homo *hetgraph.HomoGraph
	// CoreNumber maps each projected paper to its core number.
	CoreNumber map[hetgraph.NodeID]int
}

// Decompose runs the Batagelj-Zaversnik O(m) core decomposition [29] over
// the homogeneous projection h. This is the engine of the "straightforward
// solution" of §III-A: convert G to G' along the meta-path, then read any
// k-core off the decomposition.
func Decompose(h *hetgraph.HomoGraph) *Decomposition {
	n := h.NumNodes()
	deg := make([]int, n)
	maxDeg := 0
	for i, p := range h.Nodes {
		deg[i] = len(h.Adj[p])
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}

	// Bucket sort nodes by degree (bin[d] is the first position of degree-d
	// nodes in the sorted order), then peel in increasing degree order.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)  // position of node i in vert
	vert := make([]int, n) // nodes sorted by current degree
	for i := 0; i < n; i++ {
		pos[i] = bin[deg[i]]
		vert[pos[i]] = i
		bin[deg[i]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, q := range h.Adj[h.Nodes[v]] {
			u, ok := h.Index(q)
			if !ok {
				continue
			}
			if core[u] > core[v] {
				// Move u one bucket down: swap it with the first node of
				// its current degree bucket, then shrink its degree.
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				core[u]--
			}
		}
	}

	d := &Decomposition{homo: h, CoreNumber: make(map[hetgraph.NodeID]int, n)}
	for i, p := range h.Nodes {
		d.CoreNumber[p] = core[i]
	}
	return d
}

// KCore returns all papers with core number >= k, sorted by NodeID: the
// global (k,P)-core of Definition 5 (all components).
func (d *Decomposition) KCore(k int) []hetgraph.NodeID {
	var out []hetgraph.NodeID
	for p, c := range d.CoreNumber {
		if c >= k {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KCoreAround returns the k-core region connected to seed through core
// nodes, sorted by NodeID: the same community semantics as Algorithm 1 and
// FastBCore, so the naive-baseline equivalence tests can compare them
// directly. The BFS runs on the core-induced subgraph, seeded by the seed
// itself (when a core member) and by its core neighbours.
func (d *Decomposition) KCoreAround(seed hetgraph.NodeID, k int) []hetgraph.NodeID {
	if _, ok := d.homo.Index(seed); !ok {
		return nil
	}
	inCore := func(v hetgraph.NodeID) bool { return d.CoreNumber[v] >= k }
	visited := map[hetgraph.NodeID]bool{}
	var queue []hetgraph.NodeID
	push := func(v hetgraph.NodeID) {
		if inCore(v) && !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	push(seed)
	for _, u := range d.homo.Adj[seed] {
		push(u)
	}
	var out []hetgraph.NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, u := range d.homo.Adj[v] {
			push(u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NaiveSearch is the straightforward solution of §III-A: project the whole
// heterogeneous graph along mp, run the full core decomposition, and return
// the k-core members in the seed's component. It produces the same strict
// core as FastBCore at a much higher cost, and exists as the correctness
// oracle and cost baseline for the benchmarks.
func NaiveSearch(g *hetgraph.Graph, seed hetgraph.NodeID, k int, mp hetgraph.MetaPath) []hetgraph.NodeID {
	validate(g, seed, k, mp)
	h := hetgraph.Project(g, mp)
	return Decompose(h).KCoreAround(seed, k)
}
