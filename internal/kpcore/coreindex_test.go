package kpcore

import (
	"math/rand"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/hetgraph/testgraph"
)

func TestCoreIndexMatchesSearchOnFigure2(t *testing.T) {
	g, n := testgraph.Figure2()
	idx := NewCoreIndex(g, 3, hetgraph.PAP)
	for _, seed := range []string{"p4", "p1", "p5", "p10"} {
		want := Search(g, n[seed], 3, hetgraph.PAP)
		got := idx.CommunityAround(n[seed])
		if !equalIDs(got.Core, want.Core) {
			t.Errorf("seed %s: core %v != %v", seed, asNames(n, got.Core), asNames(n, want.Core))
		}
		if !equalIDs(got.Members, want.Members) {
			t.Errorf("seed %s: members %v != %v", seed, asNames(n, got.Members), asNames(n, want.Members))
		}
	}
	if idx.K() != 3 || idx.MetaPath().String() != "P-A-P" {
		t.Error("accessors wrong")
	}
}

// TestCoreIndexMatchesSearchOnDatasets: Core and Members agree with
// Algorithm 1 for every sampled seed on realistic networks; the near pool
// is a boundary set (different construction) but must stay disjoint from
// the members and non-empty whenever the search's pool is.
func TestCoreIndexMatchesSearchOnDatasets(t *testing.T) {
	ds := dataset.Generate(dataset.AminerSim(400))
	g := ds.Graph
	rng := rand.New(rand.NewSource(6))
	papers := g.NodesOfType(hetgraph.Paper)
	for _, mp := range []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PP} {
		idx := NewCoreIndex(g, 4, mp)
		for i := 0; i < 15; i++ {
			seed := papers[rng.Intn(len(papers))]
			want := Search(g, seed, 4, mp)
			got := idx.CommunityAround(seed)
			if !equalIDs(got.Core, want.Core) {
				t.Fatalf("%s seed %d: cores differ (%d vs %d members)",
					mp, seed, len(got.Core), len(want.Core))
			}
			if !equalIDs(got.Members, want.Members) {
				t.Fatalf("%s seed %d: members differ", mp, seed)
			}
			for _, v := range got.Near {
				if got.Contains(v) {
					t.Fatalf("%s seed %d: near member %d inside community", mp, seed, v)
				}
			}
		}
	}
}

func TestCoreIndexComponents(t *testing.T) {
	g, n := testgraph.Figure2()
	idx := NewCoreIndex(g, 3, hetgraph.PAP)
	// Figure 2 has exactly one 3-core component: {p1..p4}.
	if idx.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", idx.NumComponents())
	}
	if !idx.CoreNumberAtLeastK(n["p1"]) || idx.CoreNumberAtLeastK(n["p5"]) {
		t.Error("core membership wrong")
	}
}

func TestCoreIndexAmortizesManySeeds(t *testing.T) {
	// The index must answer every paper as a seed without error and with
	// valid communities (seed always a member).
	ds := dataset.Generate(dataset.AminerSim(300))
	g := ds.Graph
	idx := NewCoreIndex(g, 4, hetgraph.PAP)
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		com := idx.CommunityAround(p)
		if !com.Contains(p) {
			t.Fatalf("seed %d missing from its own community", p)
		}
	}
}
