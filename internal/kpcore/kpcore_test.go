package kpcore

import (
	"math/rand"
	"sort"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
	"expertfind/internal/hetgraph/testgraph"
)

func asNames(n map[string]hetgraph.NodeID, ids []hetgraph.NodeID) []string {
	rev := map[hetgraph.NodeID]string{}
	for name, id := range n {
		rev[id] = name
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = rev[id]
	}
	sort.Strings(out)
	return out
}

func equalStr(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExample4 replays the paper's Example 4: searching from p4 with k=3,
// P=P-A-P yields the strict core {p1,p2,p3,p4}, prunes p5, and the
// extension re-admits p5, giving the community {p1..p5}.
func TestExample4(t *testing.T) {
	g, n := testgraph.Figure2()
	com := Search(g, n["p4"], 3, hetgraph.PAP)

	if got, want := asNames(n, com.Core), []string{"p1", "p2", "p3", "p4"}; !equalStr(got, want) {
		t.Errorf("core = %v, want %v", got, want)
	}
	if got, want := asNames(n, com.Members), []string{"p1", "p2", "p3", "p4", "p5"}; !equalStr(got, want) {
		t.Errorf("members = %v, want %v", got, want)
	}
	if !com.Contains(n["p5"]) {
		t.Error("extension lost p5")
	}
	if com.InCore(n["p5"]) {
		t.Error("p5 must not be in the strict core (deg=2 < 3)")
	}
	// p5 is pruned during the search but re-admitted by the extension, so
	// it must NOT be in the near pool (members and near negatives are
	// disjoint).
	for _, v := range com.Near {
		if v == n["p5"] {
			t.Error("p5 is a member and must not be a near negative")
		}
		if v == n["p10"] {
			t.Error("p10 reached although not P-connected to p4")
		}
	}

	// Seeding at p1 instead: p5 is pruned and stays outside the
	// community, so it is the near pool.
	com1 := Search(g, n["p1"], 3, hetgraph.PAP)
	if got, want := asNames(n, com1.Near), []string{"p5"}; !equalStr(got, want) {
		t.Errorf("near pool from p1 = %v, want %v", got, want)
	}
}

// TestExample3Cores replays Example 3: the k-core sizes of Figure 2 for
// k = 0..3 on the full projection.
func TestExample3Cores(t *testing.T) {
	g, n := testgraph.Figure2()
	d := Decompose(hetgraph.Project(g, hetgraph.PAP))
	if got := len(d.KCore(0)); got != 10 {
		t.Errorf("|0-core| = %d, want 10 (all papers, even p10)", got)
	}
	if got := len(d.KCore(1)); got != 9 {
		t.Errorf("|1-core| = %d, want 9 (all but p10)", got)
	}
	if got, want := asNames(n, d.KCore(3)), []string{"p1", "p2", "p3", "p4"}; !equalStr(got, want) {
		t.Errorf("3-core = %v, want %v", got, want)
	}
}

func TestSearchSeedBelowK(t *testing.T) {
	g, n := testgraph.Figure2()
	// Seeding at p5 (deg 2) with k=3: p5 itself is pruned but the search
	// still reaches the {p1..p4} core through p4; extension keeps p5's
	// neighbours p4 and p6.
	com := Search(g, n["p5"], 3, hetgraph.PAP)
	if got, want := asNames(n, com.Core), []string{"p1", "p2", "p3", "p4"}; !equalStr(got, want) {
		t.Errorf("core = %v, want %v", got, want)
	}
	for _, name := range []string{"p4", "p5", "p6"} {
		if !com.Contains(n[name]) {
			t.Errorf("members %v missing %s", asNames(n, com.Members), name)
		}
	}
}

func TestSearchK0IsComponent(t *testing.T) {
	g, n := testgraph.Figure2()
	com := Search(g, n["p4"], 0, hetgraph.PAP)
	if len(com.Core) != 9 {
		t.Errorf("0-core around p4 has %d members, want 9 (the component)", len(com.Core))
	}
	if com.Contains(n["p10"]) {
		t.Error("p10 should be unreachable")
	}
}

func TestSearchIsolatedSeed(t *testing.T) {
	g, n := testgraph.Figure2()
	com := Search(g, n["p10"], 3, hetgraph.PAP)
	if len(com.Core) != 0 {
		t.Errorf("isolated seed core = %v, want empty", com.Core)
	}
	if got, want := asNames(n, com.Members), []string{"p10"}; !equalStr(got, want) {
		t.Errorf("members = %v, want just the seed", got)
	}
}

func TestSearchValidatesInput(t *testing.T) {
	g, n := testgraph.Figure2()
	for _, fn := range []func(){
		func() { Search(g, n["a0"], 3, hetgraph.PAP) },
		func() { Search(g, n["p1"], -1, hetgraph.PAP) },
		func() { Search(g, n["p1"], 3, hetgraph.MustParseMetaPath("A-P-A")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestTheorem1OnFigure2 checks FastBCore and Algorithm 1 agree on the
// running example for all k.
func TestTheorem1OnFigure2(t *testing.T) {
	g, n := testgraph.Figure2()
	for k := 0; k <= 5; k++ {
		ours := Search(g, n["p4"], k, hetgraph.PAP).Core
		fb := FastBCore(g, n["p4"], k, hetgraph.PAP)
		if !equalIDs(ours, fb) {
			t.Errorf("k=%d: ours %v != FastBCore %v", k, asNames(n, ours), asNames(n, fb))
		}
	}
}

func equalIDs(a, b []hetgraph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCoreValidity: every strict core member must keep >= k P-neighbours
// inside the core (Definition 5), on random graphs.
func TestCoreValidityOnRandomGraphs(t *testing.T) {
	mp := hetgraph.PAP
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testgraph.Random(rng, 60, 25, 3, 3)
		papers := g.NodesOfType(hetgraph.Paper)
		seedPaper := papers[rng.Intn(len(papers))]
		for k := 1; k <= 4; k++ {
			com := Search(g, seedPaper, k, mp)
			in := map[hetgraph.NodeID]bool{}
			for _, v := range com.Core {
				in[v] = true
			}
			for _, v := range com.Core {
				deg := 0
				g.ForEachPNeighbor(v, mp, func(u hetgraph.NodeID) bool {
					if in[u] {
						deg++
					}
					return true
				})
				if deg < k {
					t.Fatalf("seed %d k=%d: core member %d has in-core degree %d", seed, k, v, deg)
				}
			}
		}
	}
}

// TestAlgorithmAgreementOnRandomGraphs cross-checks the three searches.
// Algorithm 1's core is always a subset of FastBCore's (its pruning can
// only drop regions reachable solely through sub-k nodes — see the
// Theorem 1 caveat in DESIGN.md), and FastBCore must equal the naive
// projection-based oracle exactly.
func TestAlgorithmAgreementOnRandomGraphs(t *testing.T) {
	mp := hetgraph.PAP
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testgraph.Random(rng, 50, 20, 3, 3)
		papers := g.NodesOfType(hetgraph.Paper)
		seedPaper := papers[rng.Intn(len(papers))]
		for k := 1; k <= 4; k++ {
			ours := Search(g, seedPaper, k, mp).Core
			fb := FastBCore(g, seedPaper, k, mp)
			naive := NaiveSearch(g, seedPaper, k, mp)
			if !equalIDs(fb, naive) {
				t.Fatalf("seed %d k=%d: FastBCore %v != naive %v", seed, k, fb, naive)
			}
			if !subsetIDs(ours, fb) {
				t.Fatalf("seed %d k=%d: ours %v not subset of FastBCore %v", seed, k, ours, fb)
			}
		}
	}
}

func subsetIDs(a, b []hetgraph.NodeID) bool {
	set := map[hetgraph.NodeID]bool{}
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

// TestTheorem1OnDatasets asserts full equality on realistic academic
// networks, where cores are reachable through high-degree regions.
func TestTheorem1OnDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	ds := dataset.Generate(dataset.AminerSim(300))
	g := ds.Graph
	rng := rand.New(rand.NewSource(4))
	papers := g.NodesOfType(hetgraph.Paper)
	for i := 0; i < 10; i++ {
		s := papers[rng.Intn(len(papers))]
		for _, mp := range []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP, hetgraph.PP} {
			ours := Search(g, s, 4, mp).Core
			fb := FastBCore(g, s, 4, mp)
			if !equalIDs(ours, fb) {
				t.Fatalf("seed paper %d, %s: Theorem 1 equality violated (%d vs %d members)",
					s, mp, len(ours), len(fb))
			}
		}
	}
}

func TestDecomposeCoreNumbersMonotone(t *testing.T) {
	// k-cores must be nested: KCore(k+1) ⊆ KCore(k).
	rng := rand.New(rand.NewSource(11))
	g := testgraph.Random(rng, 60, 25, 3, 3)
	d := Decompose(hetgraph.Project(g, hetgraph.PAP))
	for k := 0; k < 5; k++ {
		if !subsetIDs(d.KCore(k+1), d.KCore(k)) {
			t.Fatalf("KCore(%d) not subset of KCore(%d)", k+1, k)
		}
	}
}

func TestDecomposeAgainstPeeling(t *testing.T) {
	// Core numbers from the O(m) bucket algorithm must match a direct
	// peel at each k.
	rng := rand.New(rand.NewSource(13))
	g := testgraph.Random(rng, 40, 15, 2, 3)
	h := hetgraph.Project(g, hetgraph.PAP)
	d := Decompose(h)
	for k := 1; k <= 4; k++ {
		want := peelAll(h, k)
		got := d.KCore(k)
		if !equalIDs(got, want) {
			t.Fatalf("k=%d: decomposition %v != peel %v", k, got, want)
		}
	}
}

// peelAll is an independent reference implementation: repeatedly remove
// nodes with degree < k from the whole projection.
func peelAll(h *hetgraph.HomoGraph, k int) []hetgraph.NodeID {
	alive := map[hetgraph.NodeID]bool{}
	for _, p := range h.Nodes {
		alive[p] = true
	}
	for {
		removed := false
		for _, p := range h.Nodes {
			if !alive[p] {
				continue
			}
			deg := 0
			for _, q := range h.Adj[p] {
				if alive[q] {
					deg++
				}
			}
			if deg < k {
				alive[p] = false
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	var out []hetgraph.NodeID
	for _, p := range h.Nodes {
		if alive[p] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
