package kpcore

import (
	"math/rand"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/hetgraph/testgraph"
)

func TestSearchMultiSinglePathEqualsSearch(t *testing.T) {
	g, n := testgraph.Figure2()
	a := Search(g, n["p4"], 3, hetgraph.PAP)
	b := SearchMulti(g, n["p4"], 3, []hetgraph.MetaPath{hetgraph.PAP})
	if !equalIDs(a.Core, b.Core) || !equalIDs(a.Members, b.Members) || !equalIDs(a.Near, b.Near) {
		t.Error("SearchMulti with one path differs from Search")
	}
}

func TestSearchMultiIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testgraph.Random(rng, 60, 25, 3, 3)
	papers := g.NodesOfType(hetgraph.Paper)
	mps := []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}
	for i := 0; i < 5; i++ {
		s := papers[rng.Intn(len(papers))]
		multi := SearchMulti(g, s, 2, mps)
		pap := Search(g, s, 2, hetgraph.PAP)
		ptp := Search(g, s, 2, hetgraph.PTP)
		// Eq. 8: the common sub-community is the per-path intersection.
		for _, v := range multi.Core {
			if !pap.InCore(v) || !ptp.InCore(v) {
				t.Fatalf("core member %d missing from a per-path core", v)
			}
		}
		for _, v := range pap.Core {
			if ptp.InCore(v) && !multi.InCore(v) {
				t.Fatalf("intersection lost %d", v)
			}
		}
		// The seed always survives (both extensions keep it).
		if !multi.Contains(s) {
			t.Fatal("seed lost from multi-path community")
		}
		// Near pools are unioned.
		nearSet := map[hetgraph.NodeID]bool{}
		for _, v := range multi.Near {
			nearSet[v] = true
		}
		for _, v := range append(append([]hetgraph.NodeID{}, pap.Near...), ptp.Near...) {
			if !nearSet[v] {
				t.Fatalf("near pool missing %d", v)
			}
		}
	}
}

func TestSearchMultiMorePathsSmallerCommunity(t *testing.T) {
	// Adding meta-paths can only shrink the common sub-community — the
	// Table IV explanation for why three paths underperform two.
	rng := rand.New(rand.NewSource(9))
	g := testgraph.Random(rng, 80, 30, 4, 3)
	papers := g.NodesOfType(hetgraph.Paper)
	two := []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP}
	three := []hetgraph.MetaPath{hetgraph.PAP, hetgraph.PTP, hetgraph.PP}
	for i := 0; i < 5; i++ {
		s := papers[rng.Intn(len(papers))]
		c2 := SearchMulti(g, s, 2, two)
		c3 := SearchMulti(g, s, 2, three)
		if len(c3.Core) > len(c2.Core) {
			t.Fatalf("three-path core (%d) larger than two-path core (%d)", len(c3.Core), len(c2.Core))
		}
	}
}

func TestSearchMultiEmptyPathsPanics(t *testing.T) {
	g, n := testgraph.Figure2()
	defer func() {
		if recover() == nil {
			t.Error("empty meta-path list did not panic")
		}
	}()
	SearchMulti(g, n["p1"], 2, nil)
}
