package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"expertfind/internal/hetgraph"
)

func small() Config {
	c := AminerSim(300)
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small())
	b := Generate(small())
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same config produced different graphs")
	}
	for id := hetgraph.NodeID(0); int(id) < a.Graph.NumNodes(); id++ {
		if a.Graph.Label(id) != b.Graph.Label(id) {
			t.Fatalf("label of node %d differs", id)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	ds := Generate(small())
	g := ds.Graph
	st := g.Stats()
	if st.Papers != 300 {
		t.Errorf("papers = %d, want 300", st.Papers)
	}
	if st.Topics != 7 {
		t.Errorf("topics = %d, want 7 (Aminer preset)", st.Topics)
	}
	if st.Experts == 0 || st.Venues == 0 || st.Relations == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	// Every paper has authors, a venue and at least one topic.
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		if len(g.AuthorsOf(p)) == 0 {
			t.Fatalf("paper %d has no authors", p)
		}
		if g.Degree(p, hetgraph.Venue) != 1 {
			t.Fatalf("paper %d has %d venues", p, g.Degree(p, hetgraph.Venue))
		}
		nt := g.Degree(p, hetgraph.Topic)
		if nt < 1 || nt > 2 {
			t.Fatalf("paper %d mentions %d topics", p, nt)
		}
		if g.Label(p) == "" {
			t.Fatalf("paper %d has no text", p)
		}
	}
}

func TestPrimaryTopicConsistency(t *testing.T) {
	ds := Generate(small())
	g := ds.Graph
	papers := g.NodesOfType(hetgraph.Paper)
	labelled := 0
	for _, p := range papers {
		topic, ok := ds.PrimaryTopic[p]
		if !ok {
			t.Fatalf("paper %d missing a primary topic", p)
		}
		for _, tn := range g.Neighbors(p, hetgraph.Topic) {
			if tn == ds.Topics[topic] {
				labelled++
			}
		}
	}
	// Topic labels carry TopicLabelNoise (default 8%): most papers — but
	// deliberately not all — mention their true primary topic.
	frac := float64(labelled) / float64(len(papers))
	if frac < 0.85 {
		t.Errorf("only %.2f of papers mention their primary topic; label noise too high", frac)
	}
	if frac == 1 {
		t.Error("every label is clean; TopicLabelNoise had no effect")
	}
}

func TestAuthorTopicsMatchGroundTruth(t *testing.T) {
	ds := Generate(small())
	for a, topics := range ds.AuthorTopics {
		for tp := range topics {
			if !ds.ExpertsOfTopic(tp)[a] {
				t.Fatalf("author %d missing from topic %d ground truth", a, tp)
			}
		}
	}
	// Every author in a ground-truth set authored a paper of that topic.
	g := ds.Graph
	for tp := 0; tp < 7; tp++ {
		for a := range ds.ExpertsOfTopic(tp) {
			ok := false
			for _, p := range g.PapersOf(a) {
				if ds.PrimaryTopic[p] == tp {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("author %d in truth of topic %d without a paper there", a, tp)
			}
		}
	}
}

func TestCoAuthorshipCohesion(t *testing.T) {
	// Research groups must generate real (k,P)-core material: a healthy
	// fraction of papers should have >= 4 P-A-P neighbours.
	ds := Generate(small())
	g := ds.Graph
	dense := 0
	papers := g.NodesOfType(hetgraph.Paper)
	for _, p := range papers {
		if g.PDegree(p, hetgraph.PAP) >= 4 {
			dense++
		}
	}
	if frac := float64(dense) / float64(len(papers)); frac < 0.5 {
		t.Errorf("only %.2f of papers have PAP degree >= 4; groups too weak", frac)
	}
}

func TestCitationTopicBias(t *testing.T) {
	ds := Generate(AminerSim(600))
	g := ds.Graph
	same, total := 0, 0
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		for _, q := range g.Neighbors(p, hetgraph.Paper) {
			total++
			if ds.PrimaryTopic[p] == ds.PrimaryTopic[q] {
				same++
			}
		}
	}
	if total == 0 {
		t.Fatal("no citations generated")
	}
	if frac := float64(same) / float64(total); frac < 0.7 {
		t.Errorf("same-topic citation fraction %.2f, want >= 0.7", frac)
	}
}

func TestQueries(t *testing.T) {
	ds := Generate(small())
	rng := rand.New(rand.NewSource(1))
	qs := ds.Queries(20, rng)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[hetgraph.NodeID]bool{}
	for _, q := range qs {
		if seen[q.Source] {
			t.Error("duplicate source paper across queries")
		}
		seen[q.Source] = true
		if q.Text == "" {
			t.Error("empty query text")
		}
		if len(q.Truth) == 0 {
			t.Error("empty ground truth")
		}
		if q.Topic != ds.PrimaryTopic[q.Source] {
			t.Error("query topic mismatch")
		}
		// Paraphrase, not verbatim.
		if q.Text == ds.Graph.Label(q.Source) {
			t.Error("query text is the verbatim paper text")
		}
	}
	// Overshoot returns everything once.
	if got := ds.Queries(10_000, rng); len(got) != 300 {
		t.Errorf("overshoot queries = %d, want 300", len(got))
	}
}

func TestQueryParaphraseStaysTopical(t *testing.T) {
	ds := Generate(small())
	rng := rand.New(rand.NewSource(2))
	qs := ds.Queries(10, rng)
	// A paraphrase must share at least a few words with some paper of its
	// topic (it is drawn from the same lexicon).
	for _, q := range qs {
		qWords := map[string]bool{}
		for _, w := range strings.Fields(q.Text) {
			qWords[w] = true
		}
		overlap := 0
		for _, p := range ds.Graph.NodesOfType(hetgraph.Paper) {
			if ds.PrimaryTopic[p] != q.Topic {
				continue
			}
			for _, w := range strings.Fields(ds.Graph.Label(p)) {
				if qWords[w] {
					overlap++
				}
			}
		}
		if overlap < 3 {
			t.Errorf("query about topic %d shares only %d word occurrences with its topic", q.Topic, overlap)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, c := range []Config{AminerSim(0), DBLPSim(0), ACMSim(0)} {
		if c.NumPapers <= 0 || c.NumTopics <= 0 || c.Name == "" {
			t.Errorf("preset incomplete: %+v", c)
		}
	}
	if AminerSim(0).NumTopics != 7 || DBLPSim(0).NumTopics != 13 || ACMSim(0).NumTopics != 13 {
		t.Error("preset topic counts do not match Table I")
	}
}

func TestCorpus(t *testing.T) {
	ds := Generate(small())
	corpus := ds.Corpus()
	if len(corpus) != 300 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	for i, doc := range corpus {
		if doc == "" {
			t.Fatalf("empty document %d", i)
		}
	}
}

func TestDialectsDivergeSurfaces(t *testing.T) {
	// Same-topic papers in different dialects must share fewer exact
	// words than same-dialect ones on average; the stems still overlap.
	cfg := small()
	cfg.Dialects = 3
	ds := Generate(cfg)
	// Words across the corpus: at least some dialect suffix forms exist.
	suffixed := 0
	for _, doc := range ds.Corpus() {
		if strings.Contains(doc, "ation ") || strings.Contains(doc, "izer ") {
			suffixed++
		}
	}
	if suffixed == 0 {
		t.Error("no dialect-suffixed forms found in the corpus")
	}
}

func TestQueriesJSONRoundTrip(t *testing.T) {
	ds := Generate(small())
	rng := rand.New(rand.NewSource(4))
	qs := ds.Queries(5, rng)
	var buf bytes.Buffer
	if err := WriteQueriesJSON(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQueriesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("%d queries after round trip, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i].Source != qs[i].Source || got[i].Topic != qs[i].Topic || got[i].Text != qs[i].Text {
			t.Fatalf("query %d changed", i)
		}
		if len(got[i].Truth) != len(qs[i].Truth) {
			t.Fatalf("query %d truth size changed", i)
		}
		for a := range qs[i].Truth {
			if !got[i].Truth[a] {
				t.Fatalf("query %d lost truth member %d", i, a)
			}
		}
	}
	if _, err := ReadQueriesJSON(strings.NewReader("broken")); err == nil {
		t.Error("garbage accepted")
	}
}
