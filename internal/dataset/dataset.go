// Package dataset generates synthetic heterogeneous academic networks that
// stand in for the Aminer, DBLP and ACM dumps of §VI-A (see DESIGN.md for
// the substitution rationale). The generator plants exactly the structure
// the paper's method exploits:
//
//   - research groups: clusters of authors in one topic who co-author many
//     papers, producing dense P-A-P (k,P)-cores;
//   - topic-conditioned text: each topic has its own lexicon, so papers on
//     the same topic are lexically similar (the signal text-only baselines
//     use) while co-authored papers are even more similar;
//   - intra-topic citation bias and topic-aligned venues, giving the P-P
//     and P-T-P meta-paths real signal and the venue relation the noise
//     that Figure 1(a) warns about;
//   - interdisciplinary authors who publish in two topics, the §V failure
//     mode that makes P-A-P ∩ P-T-P beat P-A-P alone.
//
// Everything is driven by a single seed; the same Config generates the
// same dataset bit-for-bit.
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"expertfind/internal/hetgraph"
)

// Config parameterises dataset generation.
type Config struct {
	Name string
	Seed int64

	NumPapers int
	NumTopics int
	// GroupSize is the number of authors in one research group; papers are
	// authored by subsets of a group.
	GroupSizeMin, GroupSizeMax int
	// PapersPerGroup sets how many papers each group produces on average;
	// it controls co-authorship density and hence (k,P)-core sizes.
	PapersPerGroup int
	// AuthorsPerPaper bounds the author-list length.
	AuthorsPerPaperMin, AuthorsPerPaperMax int
	// VenuesPerTopic is the number of venues mainly publishing each topic.
	VenuesPerTopic int
	// InterdisciplinaryFrac is the fraction of groups that also publish in
	// a secondary topic.
	InterdisciplinaryFrac float64
	// CitesMax bounds citations per paper. OwnGroupCiteProb is the
	// probability a citation targets an earlier paper of the same research
	// group (self-citation keeps the citation (k,P)-core group-local); the
	// remaining citations stay within the paper's topic. Cross-topic
	// citation arises only through interdisciplinary groups citing their
	// own work — uniformly random cross-topic citations would glue every
	// topic's citation core into one giant component, a degeneracy of
	// component-based community search the paper's corpora do not show.
	CitesMax         int
	OwnGroupCiteProb float64
	// RandomCiteProb is the probability a citation targets an arbitrary
	// earlier paper (default 0.12) — the "less-relevant" citations §VI-B
	// blames for P-P being the weakest single meta-path.
	RandomCiteProb float64
	// SecondaryMentionProb is the probability a paper mentions a second
	// topic. It defaults to 0: even a single two-topic paper with k
	// same-topic neighbours on each side glues both topics into one
	// (k,P-T-P)-core component, collapsing every same-topic community
	// into the whole corpus. Interdisciplinarity is instead modelled by
	// groups publishing papers in two topics (InterdisciplinaryFrac).
	SecondaryMentionProb float64
	// TopicWordFrac is the fraction of a paper's words drawn from its
	// topic lexicon (the rest come from the shared lexicon).
	TopicWordFrac float64
	// TitleWords and AbstractWords size the generated texts.
	TitleWords, AbstractWords int
	// TopicLexicon and CommonLexicon size the vocabularies.
	TopicLexicon, CommonLexicon int
	// TopicOverlapFrac is the fraction of each topic's lexicon shared with
	// the next topic (ring order). Overlap makes adjacent topics lexically
	// confusable, so purely textual methods mix them up while structural
	// relationships still separate them — the paper's central premise.
	TopicOverlapFrac float64
	// TopicLabelNoise is the probability a paper's Mention edge points at
	// a wrong topic (default 0.08), modelling noisy automatic topic
	// tagging. The paper's text, venue, authors and ground truth follow
	// the true topic; only the label lies. P-T-P-only communities inherit
	// this noise, which is what the P-A-P ∩ P-T-P intersection filters
	// out (§V).
	TopicLabelNoise float64
	// Dialects is the number of surface-form variants per topic stem
	// (default 3). Each paper is written in one dialect: the same stem
	// appears as stem, stem+"ation", stem+"izer", ... simulating the
	// synonymy/inflection of real scientific text. Word-level methods see
	// dialects as disjoint vocabularies; subword methods recognise the
	// shared stems.
	Dialects int
}

// dialectSuffixes supplies the per-dialect surface suffixes; dialect 0 is
// the base form.
var dialectSuffixes = []string{"", "ation", "izer", "ology", "istic", "ment"}

// inflections vary each topic-word occurrence (plural, adjectival, past
// forms), so even two papers of the same dialect rarely share a stem's
// exact surface form — the morphological variance of real text that
// word-level exact matching loses and subword stems survive.
var inflections = []string{"", "s", "ed", "ique"}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.NumPapers, 1000)
	def(&c.NumTopics, 7)
	def(&c.GroupSizeMin, 4)
	def(&c.GroupSizeMax, 8)
	def(&c.PapersPerGroup, 12)
	def(&c.AuthorsPerPaperMin, 2)
	def(&c.AuthorsPerPaperMax, 4)
	def(&c.VenuesPerTopic, 3)
	def(&c.CitesMax, 6)
	def(&c.TitleWords, 8)
	def(&c.AbstractWords, 60)
	def(&c.TopicLexicon, 120)
	def(&c.CommonLexicon, 400)
	if c.InterdisciplinaryFrac <= 0 {
		c.InterdisciplinaryFrac = 0.25
	}
	if c.OwnGroupCiteProb <= 0 {
		c.OwnGroupCiteProb = 0.6
	}
	if c.RandomCiteProb <= 0 {
		c.RandomCiteProb = 0.12
	}
	if c.TopicWordFrac <= 0 {
		c.TopicWordFrac = 0.3
	}
	if c.TopicOverlapFrac <= 0 {
		c.TopicOverlapFrac = 0.45
	}
	if c.TopicLabelNoise <= 0 {
		c.TopicLabelNoise = 0.08
	}
	if c.Dialects <= 0 {
		c.Dialects = 3
	}
	if c.Dialects > len(dialectSuffixes) {
		c.Dialects = len(dialectSuffixes)
	}
	if c.AuthorsPerPaperMax < c.AuthorsPerPaperMin {
		c.AuthorsPerPaperMax = c.AuthorsPerPaperMin
	}
	if c.GroupSizeMax < c.GroupSizeMin {
		c.GroupSizeMax = c.GroupSizeMin
	}
	return c
}

// AminerSim returns the Aminer-like preset (7 topics, Table I's topic
// count) scaled to numPapers (0 for the default 2000).
func AminerSim(numPapers int) Config {
	if numPapers <= 0 {
		numPapers = 2000
	}
	return Config{Name: "aminer-sim", Seed: 101, NumPapers: numPapers, NumTopics: 7}
}

// DBLPSim returns the DBLP-like preset (13 topics) scaled to numPapers
// (0 for the default 2400).
func DBLPSim(numPapers int) Config {
	if numPapers <= 0 {
		numPapers = 2400
	}
	return Config{Name: "dblp-sim", Seed: 202, NumPapers: numPapers, NumTopics: 13}
}

// ACMSim returns the ACM-like preset (13 topics, larger corpus) scaled to
// numPapers (0 for the default 3000).
func ACMSim(numPapers int) Config {
	if numPapers <= 0 {
		numPapers = 3000
	}
	return Config{Name: "acm-sim", Seed: 303, NumPapers: numPapers, NumTopics: 13}
}

// Dataset is a generated academic network plus the side information the
// experiments need (topic assignments and ground-truth machinery).
type Dataset struct {
	Name  string
	Graph *hetgraph.Graph
	// Topics[i] is the Topic node of topic index i.
	Topics []hetgraph.NodeID
	// Venues lists all venue nodes.
	Venues []hetgraph.NodeID
	// PrimaryTopic maps each paper to its primary topic index.
	PrimaryTopic map[hetgraph.NodeID]int
	// AuthorTopics maps each author to the set of topic indices they
	// publish in.
	AuthorTopics map[hetgraph.NodeID]map[int]bool
	// expertsByTopic caches, per topic index, the set of authors with that
	// topic (the ground-truth sets).
	expertsByTopic []map[hetgraph.NodeID]bool
	// Generation internals kept for query paraphrasing.
	cfg      Config
	topicLex [][]string
	common   []string
}

// Generate builds a dataset from cfg.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := hetgraph.New()

	d := &Dataset{
		Name:         cfg.Name,
		Graph:        g,
		PrimaryTopic: map[hetgraph.NodeID]int{},
		AuthorTopics: map[hetgraph.NodeID]map[int]bool{},
		cfg:          cfg,
	}

	// Lexicons. Each topic owns a unique block plus a block shared with the
	// next topic on the ring, so adjacent topics are lexically confusable.
	wordGen := newWordGen(rng)
	common := wordGen.words(cfg.CommonLexicon)
	shared := int(float64(cfg.TopicLexicon) * cfg.TopicOverlapFrac)
	unique := cfg.TopicLexicon - shared
	bridges := make([][]string, cfg.NumTopics) // bridges[t]: shared between t and t+1
	for t := range bridges {
		bridges[t] = wordGen.words(shared)
	}
	topicLex := make([][]string, cfg.NumTopics)
	for t := range topicLex {
		lex := wordGen.words(unique)
		half := len(bridges[t]) / 2
		lex = append(lex, bridges[t][:half]...)
		prev := (t + cfg.NumTopics - 1) % cfg.NumTopics
		lex = append(lex, bridges[prev][half:]...)
		// Interleave so the head-biased sampler draws shared words too.
		rng.Shuffle(len(lex), func(i, j int) { lex[i], lex[j] = lex[j], lex[i] })
		topicLex[t] = lex
	}
	d.topicLex = topicLex
	d.common = common

	// Topic and venue nodes.
	for t := 0; t < cfg.NumTopics; t++ {
		d.Topics = append(d.Topics, g.AddNode(hetgraph.Topic, fmt.Sprintf("topic-%d-%s", t, topicLex[t][0])))
	}
	venuesOfTopic := make([][]hetgraph.NodeID, cfg.NumTopics)
	for t := 0; t < cfg.NumTopics; t++ {
		for v := 0; v < cfg.VenuesPerTopic; v++ {
			id := g.AddNode(hetgraph.Venue, fmt.Sprintf("venue-%d-%d", t, v))
			venuesOfTopic[t] = append(venuesOfTopic[t], id)
			d.Venues = append(d.Venues, id)
		}
	}

	// Research groups: enough groups per topic to cover the paper budget.
	type group struct {
		topic     int
		secondary int // -1 when none
		dialect   int // the group's predominant terminology
		authors   []hetgraph.NodeID
	}
	papersPerTopic := cfg.NumPapers / cfg.NumTopics
	if papersPerTopic < 1 {
		papersPerTopic = 1
	}
	groupsPerTopic := papersPerTopic / cfg.PapersPerGroup
	if groupsPerTopic < 1 {
		groupsPerTopic = 1
	}
	var groups []group
	for t := 0; t < cfg.NumTopics; t++ {
		for gi := 0; gi < groupsPerTopic; gi++ {
			size := cfg.GroupSizeMin + rng.Intn(cfg.GroupSizeMax-cfg.GroupSizeMin+1)
			gr := group{topic: t, secondary: -1, dialect: rng.Intn(cfg.Dialects)}
			for a := 0; a < size; a++ {
				id := g.AddNode(hetgraph.Author, fmt.Sprintf("author-%d-%d-%d", t, gi, a))
				gr.authors = append(gr.authors, id)
			}
			if rng.Float64() < cfg.InterdisciplinaryFrac && cfg.NumTopics > 1 {
				gr.secondary = rng.Intn(cfg.NumTopics - 1)
				if gr.secondary >= t {
					gr.secondary++
				}
			}
			groups = append(groups, gr)
		}
	}

	// Papers.
	papersOfTopic := make([][]hetgraph.NodeID, cfg.NumTopics)
	papersOfGroup := make([][]hetgraph.NodeID, len(groups))
	var allPapers []hetgraph.NodeID
	for i := 0; i < cfg.NumPapers; i++ {
		gi := rng.Intn(len(groups))
		gr := &groups[gi]
		topic := gr.topic
		// Interdisciplinary groups publish a third of their papers in
		// their secondary topic.
		if gr.secondary >= 0 && rng.Float64() < 0.33 {
			topic = gr.secondary
		}

		// A group mostly writes in its own terminology; occasionally a
		// paper adopts another dialect (new collaborators, venue norms).
		dialect := gr.dialect
		if rng.Float64() < 0.2 {
			dialect = rng.Intn(cfg.Dialects)
		}
		text := genText(rng, topicLex[topic], common, cfg, dialect)
		p := g.AddNode(hetgraph.Paper, text)
		d.PrimaryTopic[p] = topic
		papersOfTopic[topic] = append(papersOfTopic[topic], p)
		papersOfGroup[gi] = append(papersOfGroup[gi], p)
		allPapers = append(allPapers, p)

		// Authors: a subset of the group, shuffled for varying ranks.
		na := cfg.AuthorsPerPaperMin + rng.Intn(cfg.AuthorsPerPaperMax-cfg.AuthorsPerPaperMin+1)
		if na > len(gr.authors) {
			na = len(gr.authors)
		}
		perm := rng.Perm(len(gr.authors))
		for _, ai := range perm[:na] {
			a := gr.authors[ai]
			g.MustAddEdge(a, p, hetgraph.Write)
			ts := d.AuthorTopics[a]
			if ts == nil {
				ts = map[int]bool{}
				d.AuthorTopics[a] = ts
			}
			ts[topic] = true
		}

		// Venue: mostly a venue of the topic.
		var venue hetgraph.NodeID
		if rng.Float64() < 0.9 {
			venue = venuesOfTopic[topic][rng.Intn(len(venuesOfTopic[topic]))]
		} else {
			venue = d.Venues[rng.Intn(len(d.Venues))]
		}
		g.MustAddEdge(p, venue, hetgraph.Publish)

		// Mention: the paper's topic label, which is occasionally wrong
		// (noisy tagging); optionally a secondary topic.
		label := topic
		if rng.Float64() < cfg.TopicLabelNoise && cfg.NumTopics > 1 {
			label = rng.Intn(cfg.NumTopics - 1)
			if label >= topic {
				label++
			}
		}
		g.MustAddEdge(p, d.Topics[label], hetgraph.Mention)
		if rng.Float64() < cfg.SecondaryMentionProb && cfg.NumTopics > 1 {
			sec := rng.Intn(cfg.NumTopics - 1)
			if sec >= label {
				sec++
			}
			g.MustAddEdge(p, d.Topics[sec], hetgraph.Mention)
		}

		// Citations to earlier papers: mostly the group's own work, the
		// rest from the topic. Deduplicate targets to respect the
		// simple-graph adjacency.
		ncites := rng.Intn(cfg.CitesMax + 1)
		cited := map[hetgraph.NodeID]bool{}
		for c := 0; c < ncites; c++ {
			var pool []hetgraph.NodeID
			switch r := rng.Float64(); {
			case r < cfg.RandomCiteProb:
				pool = allPapers
			case r < cfg.RandomCiteProb+cfg.OwnGroupCiteProb:
				pool = papersOfGroup[gi]
			default:
				pool = papersOfTopic[topic]
			}
			if len(pool) <= 1 {
				continue
			}
			q := pool[rng.Intn(len(pool))]
			if q == p || cited[q] {
				continue
			}
			cited[q] = true
			g.MustAddEdge(p, q, hetgraph.Cite)
		}
	}

	d.expertsByTopic = make([]map[hetgraph.NodeID]bool, cfg.NumTopics)
	for t := range d.expertsByTopic {
		d.expertsByTopic[t] = map[hetgraph.NodeID]bool{}
	}
	for a, ts := range d.AuthorTopics {
		for t := range ts {
			d.expertsByTopic[t][a] = true
		}
	}
	return d
}

// ExpertsOfTopic returns the ground-truth expert set of topic index t: all
// authors who have published in t.
func (d *Dataset) ExpertsOfTopic(t int) map[hetgraph.NodeID]bool { return d.expertsByTopic[t] }

// Query is one evaluation query: a descriptive text about a randomly
// chosen paper's topic plus the ground truth of §VI-A (all authors sharing
// the source paper's topic).
type Query struct {
	Source hetgraph.NodeID
	Text   string
	Topic  int
	Truth  map[hetgraph.NodeID]bool
}

// Queries draws n evaluation queries without replacement (or all papers if
// n exceeds the corpus), using rng. The query text is a paraphrase of the
// source paper: roughly a third of its words are reused and the rest drawn
// fresh from the same topic distribution. The paper forms queries from
// L(p) verbatim; with synthetic text that degenerates into an exact-match
// benchmark that only rewards lexical methods, whereas a paraphrase keeps
// the paper's semantics ("a user describes the desired expertise in her
// own words", §I) — EXPERIMENTS.md records this substitution.
func (d *Dataset) Queries(n int, rng *rand.Rand) []Query {
	papers := d.Graph.NodesOfType(hetgraph.Paper)
	idx := rng.Perm(len(papers))
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]Query, 0, n)
	for _, i := range idx[:n] {
		p := papers[i]
		t := d.PrimaryTopic[p]
		out = append(out, Query{
			Source: p,
			Text:   d.paraphrase(p, t, rng),
			Topic:  t,
			Truth:  d.expertsByTopic[t],
		})
	}
	return out
}

// paraphrase builds a query text about paper p's topic in the user's own
// dialect: ~1/10 of the words are sampled from p's text, the rest generated
// like a fresh document of the same topic with an independently drawn
// dialect.
func (d *Dataset) paraphrase(p hetgraph.NodeID, topic int, rng *rand.Rand) string {
	source := strings.Fields(strings.ReplaceAll(d.Graph.Label(p), ".", ""))
	dialect := rng.Intn(d.cfg.Dialects)
	var b strings.Builder
	total := d.cfg.TitleWords + d.cfg.AbstractWords
	for i := 0; i < total; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case len(source) > 0 && rng.Float64() < 0.10:
			b.WriteString(source[rng.Intn(len(source))])
		case rng.Float64() < d.cfg.TopicWordFrac:
			// An imprecise user: a quarter of the topical words stray into
			// other research areas (§I: topic text is "too limited to
			// express a user's latent query intention").
			lex := d.topicLex[topic]
			if rng.Float64() < 0.25 && len(d.topicLex) > 1 {
				other := rng.Intn(len(d.topicLex) - 1)
				if other >= topic {
					other++
				}
				lex = d.topicLex[other]
			}
			u := rng.Float64()
			b.WriteString(lex[int(u*u*float64(len(lex)))])
			b.WriteString(dialectSuffixes[dialect])
			b.WriteString(inflections[rng.Intn(len(inflections))])
		default:
			b.WriteString(d.common[rng.Intn(len(d.common))])
		}
	}
	return b.String()
}

// Corpus returns the label text of every paper, in paper order; it feeds
// vocabulary induction.
func (d *Dataset) Corpus() []string {
	papers := d.Graph.NodesOfType(hetgraph.Paper)
	out := make([]string, len(papers))
	for i, p := range papers {
		out[i] = d.Graph.Label(p)
	}
	return out
}

// wordGen produces pronounceable pseudo-words, unique across one
// generator.
type wordGen struct {
	rng  *rand.Rand
	seen map[string]bool
}

var (
	onsets = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
		"n", "p", "qu", "r", "s", "t", "v", "w", "x", "z", "br", "cl",
		"dr", "fl", "gr", "pl", "st", "tr"}
	vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
)

func newWordGen(rng *rand.Rand) *wordGen { return &wordGen{rng: rng, seen: map[string]bool{}} }

func (w *wordGen) word() string {
	for {
		var b strings.Builder
		syll := 2 + w.rng.Intn(3)
		for s := 0; s < syll; s++ {
			b.WriteString(onsets[w.rng.Intn(len(onsets))])
			b.WriteString(vowels[w.rng.Intn(len(vowels))])
		}
		s := b.String()
		if !w.seen[s] {
			w.seen[s] = true
			return s
		}
	}
}

func (w *wordGen) words(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = w.word()
	}
	return out
}

// genText builds title+abstract text: TopicWordFrac of the words come from
// the topic's stem lexicon (weighted towards its head so topics have
// characteristic high-frequency terms), rendered in the paper's dialect;
// the rest come from the common lexicon.
func genText(rng *rand.Rand, topicStems, common []string, cfg Config, dialect int) string {
	var b strings.Builder
	total := cfg.TitleWords + cfg.AbstractWords
	for i := 0; i < total; i++ {
		if i == cfg.TitleWords {
			b.WriteString(". ")
		} else if i > 0 {
			b.WriteByte(' ')
		}
		if rng.Float64() < cfg.TopicWordFrac {
			// Head-biased pick: squaring the uniform skews toward index 0.
			u := rng.Float64()
			b.WriteString(topicStems[int(u*u*float64(len(topicStems)))])
			b.WriteString(dialectSuffixes[dialect])
			b.WriteString(inflections[rng.Intn(len(inflections))])
		} else {
			b.WriteString(common[rng.Intn(len(common))])
		}
	}
	return b.String()
}

// queryJSON is the serialised form of an evaluation query.
type queryJSON struct {
	Source hetgraph.NodeID   `json:"source"`
	Topic  int               `json:"topic"`
	Text   string            `json:"text"`
	Truth  []hetgraph.NodeID `json:"truth"`
}

// WriteQueriesJSON serialises evaluation queries (text plus ground-truth
// expert ids) so external tooling can score retrieval systems against the
// same benchmark.
func WriteQueriesJSON(w io.Writer, queries []Query) error {
	docs := make([]queryJSON, len(queries))
	for i, q := range queries {
		truth := make([]hetgraph.NodeID, 0, len(q.Truth))
		for a := range q.Truth {
			truth = append(truth, a)
		}
		sort.Slice(truth, func(x, y int) bool { return truth[x] < truth[y] })
		docs[i] = queryJSON{Source: q.Source, Topic: q.Topic, Text: q.Text, Truth: truth}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(docs)
}

// ReadQueriesJSON parses queries written by WriteQueriesJSON.
func ReadQueriesJSON(r io.Reader) ([]Query, error) {
	var docs []queryJSON
	if err := json.NewDecoder(r).Decode(&docs); err != nil {
		return nil, fmt.Errorf("dataset: decode queries: %w", err)
	}
	out := make([]Query, len(docs))
	for i, d := range docs {
		truth := make(map[hetgraph.NodeID]bool, len(d.Truth))
		for _, a := range d.Truth {
			truth[a] = true
		}
		out[i] = Query{Source: d.Source, Topic: d.Topic, Text: d.Text, Truth: truth}
	}
	return out, nil
}
