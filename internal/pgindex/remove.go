package pgindex

import (
	"fmt"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// vecVector keeps Compact readable without importing vec at each use.
type vecVector = vec.Vec32

// Remove tombstones a paper: it disappears from search results immediately
// while its slot keeps routing traffic (the standard proximity-graph
// deletion strategy — cutting the node out eagerly would fragment the
// graph). Call Compact once DeadFraction grows past a threshold the caller
// chooses (~0.2 works well) to rebuild without the tombstones.
func (idx *Index) Remove(id hetgraph.NodeID) error {
	dense, ok := idx.pos[id]
	if !ok {
		return fmt.Errorf("pgindex: paper %d not indexed", id)
	}
	if idx.dead == nil {
		idx.dead = make([]bool, len(idx.ids))
	}
	for len(idx.dead) < len(idx.ids) {
		idx.dead = append(idx.dead, false)
	}
	idx.dead[dense] = true
	idx.numDead++
	delete(idx.pos, id)
	return nil
}

// DeadFraction returns the share of tombstoned slots.
func (idx *Index) DeadFraction() float64 {
	if len(idx.ids) == 0 {
		return 0
	}
	return float64(idx.numDead) / float64(len(idx.ids))
}

// Compact rebuilds the index over the live papers only, dropping
// tombstones. cfg follows the same defaults as Build; pass the build-time
// config (including ExactOnly) to keep the quantization mode.
func (idx *Index) Compact(cfg Config) {
	live := make(map[hetgraph.NodeID]vecVector, len(idx.ids)-idx.numDead)
	for i, id := range idx.ids {
		if !idx.isDead(int32(i)) {
			live[id] = idx.embs.Row(i)
		}
	}
	*idx = *Build(live, cfg)
}

// isDead reports whether the dense slot is tombstoned.
func (idx *Index) isDead(i int32) bool {
	return idx.dead != nil && int(i) < len(idx.dead) && idx.dead[i]
}
