package pgindex

import (
	"math/rand"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

func randomEmbeddings(rng *rand.Rand, n, d int) map[hetgraph.NodeID]vec.Vec32 {
	out := make(map[hetgraph.NodeID]vec.Vec32, n)
	for i := 0; i < n; i++ {
		v := vec.New32(d)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[hetgraph.NodeID(i)] = v.Normalize()
	}
	return out
}

// clusteredEmbeddings mimics the fine-tuned geometry: tight clusters with
// large inter-cluster gaps — the hard case for proximity-graph search.
func clusteredEmbeddings(rng *rand.Rand, clusters, perCluster, d int) map[hetgraph.NodeID]vec.Vec32 {
	out := map[hetgraph.NodeID]vec.Vec32{}
	id := hetgraph.NodeID(0)
	for c := 0; c < clusters; c++ {
		center := vec.New32(d)
		for j := range center {
			center[j] = float32(rng.NormFloat64())
		}
		center.Normalize()
		for p := 0; p < perCluster; p++ {
			v := center.Clone()
			for j := range v {
				v[j] += float32(rng.NormFloat64() * 0.01)
			}
			out[id] = v
			id++
		}
	}
	return out
}

func TestKnnListInsert(t *testing.T) {
	l := newKnnList(3)
	for _, n := range []neighbor{{id: 1, dist: 5}, {id: 2, dist: 3}, {id: 3, dist: 4}} {
		if !l.insert(n) {
			t.Fatalf("insert %v failed", n)
		}
	}
	// Full: worse candidate rejected, better accepted, duplicate rejected.
	if l.insert(neighbor{id: 4, dist: 9}) {
		t.Error("worse candidate accepted into full list")
	}
	if !l.insert(neighbor{id: 5, dist: 1}) {
		t.Error("better candidate rejected")
	}
	if l.insert(neighbor{id: 5, dist: 1}) {
		t.Error("duplicate accepted")
	}
	// Sorted ascending, size 3.
	if len(l.items) != 3 {
		t.Fatalf("size %d, want 3", len(l.items))
	}
	for i := 1; i < len(l.items); i++ {
		if l.items[i-1].dist > l.items[i].dist {
			t.Fatal("list not sorted")
		}
	}
	if l.items[0].id != 5 {
		t.Errorf("best id = %d, want 5", l.items[0].id)
	}
}

func TestBruteForceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	embs := randomEmbeddings(rng, 50, 8)
	q := embs[hetgraph.NodeID(7)]
	res := BruteForce(embs, q, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].ID != 7 || res[0].Dist != 0 {
		t.Errorf("nearest to itself = %v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
	// m greater than corpus returns all.
	if got := BruteForce(embs, q, 500); len(got) != 50 {
		t.Errorf("overshoot m returned %d", len(got))
	}
}

func TestNNDescentRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	embs := randomEmbeddings(rng, 200, 8)
	dense := vec.NewMatrix32(0, 8)
	for i := 0; i < 200; i++ {
		dense.AppendRow(embs[hetgraph.NodeID(i)])
	}
	k := 8
	knn := nnDescent(dense, k, 15, rand.New(rand.NewSource(3)))
	// Compare against exact kNN: average recall must be high.
	var totalRecall float64
	for i := 0; i < dense.Rows; i++ {
		exact := map[int32]bool{}
		res := BruteForce(embs, dense.Row(i), k+1) // +1 for self
		for _, r := range res {
			if int(r.ID) != i {
				exact[int32(r.ID)] = true
			}
		}
		hit := 0
		for _, nb := range knn[i] {
			if exact[nb] {
				hit++
			}
		}
		totalRecall += float64(hit) / float64(k)
	}
	avg := totalRecall / float64(dense.Rows)
	if avg < 0.85 {
		t.Errorf("NNDescent recall = %.3f, want >= 0.85", avg)
	}
}

func TestBuildProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	embs := randomEmbeddings(rng, 150, 8)
	idx := Build(embs, Config{Refine: true, Seed: 7})
	if idx.Len() != 150 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if idx.NumEdges() == 0 || idx.MemoryBytes() <= 0 {
		t.Error("index empty")
	}
	// Navigating node is the paper closest to the centroid.
	centroid := vec.New32(8)
	for _, e := range embs {
		centroid.Add(e)
	}
	centroid.Scale(1 / float32(len(embs)))
	best := BruteForce(embs, centroid, 1)[0].ID
	if idx.NavigatingNode() != best {
		t.Errorf("navigating node %d, want %d", idx.NavigatingNode(), best)
	}
	// Degree cap respected (plus at most a few repair edges).
	cfg := Config{Refine: true}.withDefaults()
	for i := 0; i < 150; i++ {
		p := hetgraph.NodeID(i)
		if d := len(idx.Neighbors(p)); d > cfg.MaxDegree+4 {
			t.Errorf("paper %d degree %d exceeds cap %d", p, d, cfg.MaxDegree)
		}
	}
}

func TestBuildAllReachable(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		embs := clusteredEmbeddings(rng, 12, 12, 8)
		idx := Build(embs, Config{Refine: true, Seed: seed})
		// BFS from the navigating node must reach every paper.
		visited := map[int32]bool{idx.nav: true}
		queue := []int32{idx.nav}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range idx.nbrs[v] {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(visited) != idx.Len() {
			t.Errorf("seed %d: only %d/%d reachable from navigating node", seed, len(visited), idx.Len())
		}
	}
}

func TestSearchRecallOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	embs := clusteredEmbeddings(rng, 15, 15, 12)
	idx := Build(embs, Config{Refine: true, Seed: 9})
	var recall float64
	const m = 15
	queries := 20
	for i := 0; i < queries; i++ {
		q := embs[hetgraph.NodeID(rng.Intn(len(embs)))].Clone()
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.02)
		}
		exact := map[hetgraph.NodeID]bool{}
		for _, r := range BruteForce(embs, q, m) {
			exact[r.ID] = true
		}
		got, st := idx.Search(q, m, 0)
		if st.NodesVisited == 0 || st.DistanceComputations == 0 {
			t.Fatal("search stats empty")
		}
		hit := 0
		for _, r := range got {
			if exact[r.ID] {
				hit++
			}
		}
		recall += float64(hit) / float64(m)
	}
	recall /= float64(queries)
	if recall < 0.9 {
		t.Errorf("search recall %.3f, want >= 0.9", recall)
	}
}

func TestSearchVisitsFewerThanBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	embs := clusteredEmbeddings(rng, 20, 20, 12)
	idx := Build(embs, Config{Refine: true, Seed: 9})
	q := embs[hetgraph.NodeID(3)]
	_, st := idx.Search(q, 10, 0)
	if st.NodesVisited >= idx.Len() {
		t.Errorf("search visited all %d nodes — no pruning happening", st.NodesVisited)
	}
}

func TestSearchResultsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	embs := randomEmbeddings(rng, 100, 8)
	idx := Build(embs, Config{Refine: true, Seed: 3})
	res, _ := idx.Search(embs[hetgraph.NodeID(0)], 10, 0)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("results not sorted")
		}
	}
	if res[0].ID != 0 {
		t.Errorf("own embedding not nearest: %v", res[0])
	}
}

func TestRefineOcclusionRule(t *testing.T) {
	// Three collinear points: p at 0, x at 1, y at 2.5. With candidates
	// {x, y} for p: δ(x,y)=1.5 <= δ(p,y)=2.5, so y is redundant.
	embs := map[hetgraph.NodeID]vec.Vec32{
		0: {0}, 1: {1}, 2: {2.5},
	}
	idx := Build(embs, Config{K: 2, Refine: true, Seed: 1})
	n0 := idx.Neighbors(0)
	for _, nb := range n0 {
		if nb == 2 {
			t.Errorf("occluded neighbour kept: %v", n0)
		}
	}
}

func TestEmptyAndTinyIndexes(t *testing.T) {
	idx := Build(map[hetgraph.NodeID]vec.Vec32{}, Config{Refine: true})
	if idx.Len() != 0 {
		t.Error("empty index non-empty")
	}
	if res, _ := idx.Search(vec.Vec32{1}, 5, 0); res != nil {
		t.Error("search on empty index returned results")
	}
	one := Build(map[hetgraph.NodeID]vec.Vec32{4: {1, 2}}, Config{Refine: true})
	res, _ := one.Search(vec.Vec32{1, 2}, 3, 0)
	if len(res) != 1 || res[0].ID != 4 {
		t.Errorf("singleton search = %v", res)
	}
}

func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	embs := randomEmbeddings(rng, 80, 8)
	a := Build(embs, Config{Refine: true, Seed: 5})
	b := Build(embs, Config{Refine: true, Seed: 5})
	if a.NumEdges() != b.NumEdges() || a.NavigatingNode() != b.NavigatingNode() {
		t.Fatal("builds with same seed differ")
	}
	for i := 0; i < 80; i++ {
		p := hetgraph.NodeID(i)
		na, nb := a.Neighbors(p), b.Neighbors(p)
		if len(na) != len(nb) {
			t.Fatalf("paper %d adjacency differs", p)
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("paper %d adjacency differs", p)
			}
		}
	}
}

func TestNoRefineKeepsRawKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	embs := randomEmbeddings(rng, 60, 8)
	raw := Build(embs, Config{K: 5, Refine: false, Seed: 2})
	refined := Build(embs, Config{K: 5, Refine: true, Seed: 2})
	if raw.Len() != refined.Len() {
		t.Fatal("lengths differ")
	}
	// The raw graph has ~K out-edges per node; the refined one differs.
	if raw.NumEdges() == refined.NumEdges() {
		t.Log("edge counts equal — acceptable but unusual; refinement should change the graph")
	}
	if res, _ := raw.Search(embs[hetgraph.NodeID(1)], 5, 0); len(res) != 5 {
		t.Error("raw kNN index search failed")
	}
}

func TestEmbeddingAccessor(t *testing.T) {
	embs := map[hetgraph.NodeID]vec.Vec32{1: {1, 0}, 2: {0, 1}, 3: {1, 1}}
	idx := Build(embs, Config{Refine: true})
	if got := idx.Embedding(2); got == nil || got[1] != 1 {
		t.Errorf("Embedding(2) = %v", got)
	}
	if idx.Embedding(99) != nil {
		t.Error("missing id returned an embedding")
	}
	if idx.String() == "" {
		t.Error("String empty")
	}
}
