package pgindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// indexPersist is the gob on-disk form of an Index.
type indexPersist struct {
	IDs     []hetgraph.NodeID
	Dim     int
	Embs    []float64 // row-major, len(IDs) x Dim
	Nbrs    [][]int32
	Nav     int32
	Entries []int32
	Dead    []bool
	NumDead int
}

// WriteTo serialises the index, embeddings included, so the online stage
// can load it without re-running NNDescent and refinement.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	p := indexPersist{IDs: idx.ids, Nbrs: idx.nbrs, Nav: idx.nav, Entries: idx.entries, Dead: idx.dead, NumDead: idx.numDead}
	if len(idx.embs) > 0 {
		p.Dim = idx.embs[0].Dim()
		p.Embs = make([]float64, 0, len(idx.embs)*p.Dim)
		for _, e := range idx.embs {
			p.Embs = append(p.Embs, e...)
		}
	}
	cw := &countingWriter{w: bw}
	if err := gob.NewEncoder(cw).Encode(&p); err != nil {
		return cw.n, fmt.Errorf("pgindex: write: %w", err)
	}
	return cw.n, bw.Flush()
}

// ReadIndex deserialises an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	var p indexPersist
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("pgindex: read: %w", err)
	}
	if len(p.Nbrs) != len(p.IDs) {
		return nil, fmt.Errorf("pgindex: read: %d adjacency lists for %d nodes", len(p.Nbrs), len(p.IDs))
	}
	if p.Dim > 0 && len(p.Embs) != len(p.IDs)*p.Dim {
		return nil, fmt.Errorf("pgindex: read: %d weights for %d x %d", len(p.Embs), len(p.IDs), p.Dim)
	}
	if len(p.IDs) > 0 && (p.Nav < 0 || int(p.Nav) >= len(p.IDs)) {
		return nil, fmt.Errorf("pgindex: read: navigating node %d out of range", p.Nav)
	}
	idx := &Index{
		ids:     p.IDs,
		nbrs:    p.Nbrs,
		nav:     p.Nav,
		entries: p.Entries,
		pos:     make(map[hetgraph.NodeID]int32, len(p.IDs)),
		dead:    p.Dead,
		numDead: p.NumDead,
	}
	for i, id := range p.IDs {
		if !idx.isDead(int32(i)) {
			idx.pos[id] = int32(i)
		}
	}
	idx.embs = make([]vec.Vector, len(p.IDs))
	for i := range idx.embs {
		idx.embs[i] = vec.Vector(p.Embs[i*p.Dim : (i+1)*p.Dim])
	}
	for i, nbrs := range p.Nbrs {
		for _, nb := range nbrs {
			if nb < 0 || int(nb) >= len(p.IDs) {
				return nil, fmt.Errorf("pgindex: read: node %d has out-of-range neighbour %d", i, nb)
			}
		}
	}
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
