package pgindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// indexPersist is the gob on-disk form of an Index. Embeddings are stored
// as the flat float32 matrix (Embs32); the float64 Embs field remains so
// snapshots written before the kernel migration still decode. Quantized
// codes are never persisted — they are rebuilt from the float32 rows on
// load, which costs one pass and keeps the file format independent of the
// coding scheme.
type indexPersist struct {
	IDs       []hetgraph.NodeID
	Dim       int
	Embs      []float64 // legacy row-major, len(IDs) x Dim; nil in new files
	Embs32    []float32 // row-major, len(IDs) x Dim
	ExactOnly bool
	Nbrs      [][]int32
	Nav       int32
	Entries   []int32
	Dead      []bool
	NumDead   int
}

// WriteTo serialises the index, embeddings included, so the online stage
// can load it without re-running NNDescent and refinement.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	p := indexPersist{IDs: idx.ids, ExactOnly: idx.exactOnly, Nbrs: idx.nbrs, Nav: idx.nav, Entries: idx.entries, Dead: idx.dead, NumDead: idx.numDead}
	if idx.embs != nil && idx.embs.Rows > 0 {
		p.Dim = idx.embs.Cols
		p.Embs32 = idx.embs.Data
	}
	cw := &countingWriter{w: bw}
	if err := gob.NewEncoder(cw).Encode(&p); err != nil {
		return cw.n, fmt.Errorf("pgindex: write: %w", err)
	}
	return cw.n, bw.Flush()
}

// ReadIndex deserialises an index written by WriteTo, accepting both the
// current float32 layout and legacy float64 snapshots.
func ReadIndex(r io.Reader) (*Index, error) {
	var p indexPersist
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("pgindex: read: %w", err)
	}
	if len(p.Nbrs) != len(p.IDs) {
		return nil, fmt.Errorf("pgindex: read: %d adjacency lists for %d nodes", len(p.Nbrs), len(p.IDs))
	}
	nWeights := len(p.Embs32)
	if nWeights == 0 {
		nWeights = len(p.Embs)
	}
	if p.Dim > 0 && nWeights != len(p.IDs)*p.Dim {
		return nil, fmt.Errorf("pgindex: read: %d weights for %d x %d", nWeights, len(p.IDs), p.Dim)
	}
	if len(p.IDs) > 0 && (p.Nav < 0 || int(p.Nav) >= len(p.IDs)) {
		return nil, fmt.Errorf("pgindex: read: navigating node %d out of range", p.Nav)
	}
	idx := &Index{
		ids:       p.IDs,
		exactOnly: p.ExactOnly,
		nbrs:      p.Nbrs,
		nav:       p.Nav,
		entries:   p.Entries,
		pos:       make(map[hetgraph.NodeID]int32, len(p.IDs)),
		dead:      p.Dead,
		numDead:   p.NumDead,
	}
	for i, id := range p.IDs {
		if !idx.isDead(int32(i)) {
			idx.pos[id] = int32(i)
		}
	}
	if len(p.IDs) > 0 {
		if len(p.Embs32) > 0 {
			idx.embs = &vec.Matrix32{Rows: len(p.IDs), Cols: p.Dim, Data: p.Embs32}
		} else {
			m, err := vec.Matrix32FromFloat64(len(p.IDs), p.Dim, p.Embs)
			if err != nil {
				return nil, fmt.Errorf("pgindex: read: %w", err)
			}
			idx.embs = m
		}
		if !idx.exactOnly {
			idx.quant = vec.Quantize(idx.embs)
		}
	}
	for i, nbrs := range p.Nbrs {
		for _, nb := range nbrs {
			if nb < 0 || int(nb) >= len(p.IDs) {
				return nil, fmt.Errorf("pgindex: read: node %d has out-of-range neighbour %d", i, nb)
			}
		}
	}
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
