package pgindex

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// Config controls PG-Index construction. Zero values take defaults.
type Config struct {
	// K is the kNN-graph degree (default 10).
	K int
	// MaxIters bounds NNDescent iterations (default 12).
	MaxIters int
	// MaxDegree caps a node's refined out-degree after long-distance
	// extension and redundant removal (default 2*K).
	MaxDegree int
	// Refine toggles Algorithm 2's neighbour refinement (lines 7-12); the
	// "raw kNN graph" ablation disables it.
	Refine bool
	// Seed drives NNDescent's random initialisation.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 12
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 2 * c.K
	}
	return c
}

// DefaultConfig returns the configuration used by the experiments, with
// refinement on.
func DefaultConfig() Config { return Config{Refine: true}.withDefaults() }

// Index is the proximity-graph document index. Nodes are papers; each
// keeps a short refined out-neighbour list; search enters at the
// navigating node (the paper closest to the corpus centroid).
type Index struct {
	ids  []hetgraph.NodeID // dense index -> paper id
	embs []vec.Vector      // dense index -> representation
	nbrs [][]int32         // refined out-neighbours per dense index
	nav  int32             // navigating node (dense index)
	// entries are additional stratified search entry points. Fine-tuned
	// corpora form tight, mutually near-equidistant clusters; a single
	// entry leaves greedy search stranded on that plateau, so the search
	// seeds its pool with these as well (see EXPERIMENTS.md).
	entries []int32
	pos     map[hetgraph.NodeID]int32
	// dead tombstones removed papers (see Remove); nil when none.
	dead    []bool
	numDead int
}

// Result is one retrieved paper with its distance to the query.
type Result struct {
	ID   hetgraph.NodeID
	Dist float64 // L2 distance δ to the query
}

// Build constructs the PG-Index over the document embeddings E
// (Algorithm 2): navigating-node selection, kNN-graph initialisation via
// NNDescent, long-distance neighbour extension, and redundant-neighbour
// removal. Construction is deterministic for a given cfg.Seed.
func Build(embs map[hetgraph.NodeID]vec.Vector, cfg Config) *Index {
	return BuildWithRand(embs, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// BuildWithRand is Build with the random source injected. The only
// randomness in construction is NNDescent's kNN-graph initialisation, and
// it draws exclusively from rng — never the global math/rand source — so
// two builds over equal embeddings with identically seeded rngs produce
// identical indexes. Cluster shards rely on this to rebuild bit-identical
// per-shard indexes independently on every replica.
func BuildWithRand(embs map[hetgraph.NodeID]vec.Vector, cfg Config, rng *rand.Rand) *Index {
	cfg = cfg.withDefaults()
	idx := &Index{pos: make(map[hetgraph.NodeID]int32, len(embs))}
	idx.ids = make([]hetgraph.NodeID, 0, len(embs))
	for id := range embs {
		idx.ids = append(idx.ids, id)
	}
	sort.Slice(idx.ids, func(i, j int) bool { return idx.ids[i] < idx.ids[j] })
	idx.embs = make([]vec.Vector, len(idx.ids))
	for i, id := range idx.ids {
		idx.embs[i] = embs[id]
		idx.pos[id] = int32(i)
	}
	if len(idx.ids) == 0 {
		return idx
	}

	// (1) Navigating node: the paper whose representation is closest to
	// the centroid g of all papers.
	centroid := vec.Mean(idx.embs)
	best, bestD := 0, idx.embs[0].L2Sq(centroid)
	for i := 1; i < len(idx.embs); i++ {
		if d := idx.embs[i].L2Sq(centroid); d < bestD {
			best, bestD = i, d
		}
	}
	idx.nav = int32(best)

	// (2) Initialise the kNN graph with NNDescent.
	knn := nnDescent(idx.embs, cfg.K, cfg.MaxIters, rng)

	if !cfg.Refine {
		idx.nbrs = knn
		idx.ensureReachable()
		idx.pickEntries()
		return idx
	}

	// (3) Refine neighbours: extend with two-hop "highway" candidates,
	// then drop occluded (redundant) ones.
	idx.nbrs = make([][]int32, len(knn))
	for p := range knn {
		cands := map[int32]bool{}
		for _, x := range knn[p] {
			cands[x] = true
			for _, y := range knn[x] {
				if int(y) != p {
					cands[y] = true
				}
			}
		}
		idx.nbrs[p] = idx.refineNeighbors(int32(p), cands, cfg.MaxDegree)
	}

	// (4) Connectivity repair: occlusion pruning can disconnect tightly
	// clustered corpora from the navigating node (every cross-cluster edge
	// is "redundant" under near-tied distances), leaving greedy search
	// stranded. As in NSG/Vamana, link every unreachable node to its
	// nearest reachable one so the search tree spans all papers.
	idx.ensureReachable()
	idx.pickEntries()
	return idx
}

// pickEntries selects up to 32 stratified extra entry points (every
// n/32-th node in dense order), deterministic for a given corpus.
func (idx *Index) pickEntries() {
	n := len(idx.ids)
	const want = 32
	if n <= want {
		return
	}
	stride := n / want
	for i := 0; i < n; i += stride {
		idx.entries = append(idx.entries, int32(i))
	}
}

// ensureReachable makes every node reachable from the navigating node by
// BFS over out-edges, adding bidirectional links from stranded nodes to
// their nearest reachable node.
func (idx *Index) ensureReachable() {
	n := len(idx.ids)
	if n == 0 {
		return
	}
	reached := make([]bool, n)
	var reachable []int32
	var bfs func(start int32)
	bfs = func(start int32) {
		queue := []int32{start}
		reached[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			reachable = append(reachable, v)
			for _, u := range idx.nbrs[v] {
				if !reached[u] {
					reached[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	bfs(idx.nav)
	for u := int32(0); int(u) < n; u++ {
		if reached[u] {
			continue
		}
		// Nearest currently reachable node to u.
		best, bestD := reachable[0], idx.embs[u].L2Sq(idx.embs[reachable[0]])
		for _, v := range reachable[1:] {
			if d := idx.embs[u].L2Sq(idx.embs[v]); d < bestD {
				best, bestD = v, d
			}
		}
		idx.nbrs[best] = append(idx.nbrs[best], u)
		idx.nbrs[u] = append(idx.nbrs[u], best)
		bfs(u)
	}
}

// refineNeighbors applies the redundant-neighbour removal of Algorithm 2
// (lines 9-12): visiting candidates in ascending distance from p, a
// candidate y is redundant — and removed — if some already-kept neighbour x
// satisfies δ(x,y) <= δ(y,p), because the search can reach y through x.
func (idx *Index) refineNeighbors(p int32, cands map[int32]bool, maxDegree int) []int32 {
	type cd struct {
		id   int32
		dist float64
	}
	list := make([]cd, 0, len(cands))
	for c := range cands {
		list = append(list, cd{c, idx.embs[p].L2Sq(idx.embs[c])})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].dist != list[j].dist {
			return list[i].dist < list[j].dist
		}
		return list[i].id < list[j].id
	})
	var kept []int32
	for _, c := range list {
		if len(kept) >= maxDegree {
			break
		}
		redundant := false
		for _, x := range kept {
			if idx.embs[x].L2Sq(idx.embs[c.id]) <= c.dist {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c.id)
		}
	}
	return kept
}

// SearchStats reports the work done by one search, for the efficiency
// experiments (Figure 5's expansion/visit counts).
type SearchStats struct {
	DistanceComputations int
	NodesVisited         int
	Expansions           int
}

// Search returns the m papers most similar to the query representation,
// using greedy best-first expansion from the navigating node (§IV-B) with
// a candidate pool of size max(m, ef), seeded with the stratified entry
// points. ef=0 uses 2m. Results are sorted ascending by distance.
func (idx *Index) Search(query vec.Vector, m, ef int) ([]Result, SearchStats) {
	return idx.SearchEx(query, m, ef, true)
}

// SearchCtx is Search with cooperative cancellation: the greedy expansion
// loop checks ctx every cancelCheckEvery expansions and returns ctx.Err()
// with the partial stats when the deadline passed or the caller went away.
func (idx *Index) SearchCtx(ctx context.Context, query vec.Vector, m, ef int) ([]Result, SearchStats, error) {
	return idx.searchCtx(ctx, query, m, ef, true)
}

// SearchEx is Search with the entry strategy exposed: multiEntry=false
// starts from the navigating node alone, the paper's original §IV-B
// procedure (used by the Figure 5 experiment to isolate the effect of the
// Algorithm 2 refinement); multiEntry=true additionally seeds the
// stratified entries, which rescue greedy search on tightly clustered
// fine-tuned corpora (see DESIGN.md).
func (idx *Index) SearchEx(query vec.Vector, m, ef int, multiEntry bool) ([]Result, SearchStats) {
	res, st, _ := idx.searchCtx(context.Background(), query, m, ef, multiEntry)
	return res, st
}

// cancelCheckEvery spaces the context polls of SearchCtx: one atomic load
// per this many node expansions, cheap next to the distance computations
// an expansion performs.
const cancelCheckEvery = 32

func (idx *Index) searchCtx(ctx context.Context, query vec.Vector, m, ef int, multiEntry bool) ([]Result, SearchStats, error) {
	var st SearchStats
	n := len(idx.ids)
	if n == 0 || m <= 0 {
		return nil, st, ctx.Err()
	}
	if m > n {
		m = n
	}
	if ef < m {
		ef = 2 * m
		if ef < m {
			ef = m
		}
	}

	visited := make(map[int32]bool, ef*4)
	cand := &distHeap{} // min-heap: closest first, to expand
	pool := &maxHeap{}  // max-heap of current best ef results
	heap.Init(cand)
	heap.Init(pool)

	push := func(i int32) {
		if visited[i] {
			return
		}
		visited[i] = true
		d := idx.embs[i].L2Sq(query)
		st.DistanceComputations++
		st.NodesVisited++
		if idx.isDead(i) {
			// Tombstoned papers keep routing traffic but never enter the
			// result pool.
			heap.Push(cand, distEntry{i, d})
			return
		}
		if pool.Len() < ef {
			heap.Push(cand, distEntry{i, d})
			heap.Push(pool, distEntry{i, d})
		} else if d < (*pool)[0].dist {
			heap.Push(cand, distEntry{i, d})
			heap.Pop(pool)
			heap.Push(pool, distEntry{i, d})
		}
	}
	push(idx.nav)
	if multiEntry {
		for _, e := range idx.entries {
			push(e)
		}
	}
	for cand.Len() > 0 {
		cur := heap.Pop(cand).(distEntry)
		if pool.Len() >= ef && cur.dist > (*pool)[0].dist {
			break // the nearest unexpanded candidate cannot improve the pool
		}
		if st.Expansions%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				st.record()
				return nil, st, err
			}
		}
		st.Expansions++
		for _, nb := range idx.nbrs[cur.id] {
			push(nb)
		}
	}

	res := make([]Result, pool.Len())
	for i := len(res) - 1; i >= 0; i-- {
		e := heap.Pop(pool).(distEntry)
		res[i] = Result{ID: idx.ids[e.id], Dist: sqrt(e.dist)}
	}
	if len(res) > m {
		res = res[:m]
	}
	st.record()
	return res, st, nil
}

// BruteForce scans every embedding and returns the exact m nearest papers
// to the query, sorted ascending by distance — the "w/o PG-Index" variant.
func BruteForce(embs map[hetgraph.NodeID]vec.Vector, query vec.Vector, m int) []Result {
	all := make([]Result, 0, len(embs))
	for id, e := range embs {
		all = append(all, Result{ID: id, Dist: query.L2(e)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > m {
		all = all[:m]
	}
	return all
}

// Len returns the number of live (searchable) papers.
func (idx *Index) Len() int { return len(idx.ids) - idx.numDead }

// NavigatingNode returns the entry paper of the index.
func (idx *Index) NavigatingNode() hetgraph.NodeID { return idx.ids[idx.nav] }

// Neighbors returns the refined out-neighbours of paper p, for tests and
// diagnostics.
func (idx *Index) Neighbors(p hetgraph.NodeID) []hetgraph.NodeID {
	i, ok := idx.pos[p]
	if !ok {
		return nil
	}
	out := make([]hetgraph.NodeID, len(idx.nbrs[i]))
	for j, nb := range idx.nbrs[i] {
		out[j] = idx.ids[nb]
	}
	return out
}

// NumEdges returns the total number of directed proximity edges, the
// index-size figure of Table VI.
func (idx *Index) NumEdges() int {
	n := 0
	for _, nb := range idx.nbrs {
		n += len(nb)
	}
	return n
}

// MemoryBytes estimates the index's resident size: embeddings plus
// adjacency plus the id maps (Table VI's memory column).
func (idx *Index) MemoryBytes() int64 {
	var b int64
	for _, e := range idx.embs {
		b += int64(len(e)) * 8
	}
	b += int64(idx.NumEdges()) * 4
	b += int64(len(idx.ids)) * (4 + 8) // ids slice + pos map entries (approx)
	return b
}

// Embedding returns the indexed representation of p, or nil.
func (idx *Index) Embedding(p hetgraph.NodeID) vec.Vector {
	i, ok := idx.pos[p]
	if !ok {
		return nil
	}
	return idx.embs[i]
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func (idx *Index) String() string {
	return fmt.Sprintf("pgindex: %d papers, %d edges, nav=%d", idx.Len(), idx.NumEdges(), idx.nav)
}

// distEntry pairs a dense node index with its (squared) distance to the
// current query.
type distEntry struct {
	id   int32
	dist float64
}

// distHeap is a min-heap over distance.
type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// maxHeap is a max-heap over distance (worst of the result pool on top).
type maxHeap []distEntry

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
