package pgindex

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"sync"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// Config controls PG-Index construction. Zero values take defaults.
type Config struct {
	// K is the kNN-graph degree (default 10).
	K int
	// MaxIters bounds NNDescent iterations (default 12).
	MaxIters int
	// MaxDegree caps a node's refined out-degree after long-distance
	// extension and redundant removal (default 2*K).
	MaxDegree int
	// Refine toggles Algorithm 2's neighbour refinement (lines 7-12); the
	// "raw kNN graph" ablation disables it.
	Refine bool
	// Seed drives NNDescent's random initialisation.
	Seed int64
	// ExactOnly disables the int8-quantized candidate-scoring fast path,
	// making graph traversal use exact float32 distances throughout. The
	// default (false) scores traversal candidates against quantized codes
	// and re-ranks the full candidate pool with exact kernels before
	// returning, so published rankings are identical either way — the
	// equivalence suite in internal/cluster asserts this bit for bit.
	ExactOnly bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 12
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 2 * c.K
	}
	return c
}

// DefaultConfig returns the configuration used by the experiments, with
// refinement on.
func DefaultConfig() Config { return Config{Refine: true}.withDefaults() }

// Index is the proximity-graph document index. Nodes are papers; each
// keeps a short refined out-neighbour list; search enters at the
// navigating node (the paper closest to the corpus centroid).
//
// Embeddings live in one flat row-major float32 matrix — a full-pool
// re-rank or exhaustive scan walks memory linearly — with an optional
// int8-quantized shadow copy (quant) used only to score candidates during
// graph traversal.
type Index struct {
	ids  []hetgraph.NodeID // dense index -> paper id
	embs *vec.Matrix32     // dense index -> representation (row i)
	// quant holds the int8 codes of embs for traversal scoring; nil when
	// the index was built with Config.ExactOnly.
	quant     *vec.Quantized
	exactOnly bool
	nbrs      [][]int32 // refined out-neighbours per dense index
	nav       int32     // navigating node (dense index)
	// entries are additional stratified search entry points. Fine-tuned
	// corpora form tight, mutually near-equidistant clusters; a single
	// entry leaves greedy search stranded on that plateau, so the search
	// seeds its pool with these as well (see EXPERIMENTS.md).
	entries []int32
	pos     map[hetgraph.NodeID]int32
	// dead tombstones removed papers (see Remove); nil when none.
	dead    []bool
	numDead int
}

// Result is one retrieved paper with its distance to the query.
type Result struct {
	ID   hetgraph.NodeID
	Dist float64 // L2 distance δ to the query
}

// Build constructs the PG-Index over the document embeddings E
// (Algorithm 2): navigating-node selection, kNN-graph initialisation via
// NNDescent, long-distance neighbour extension, and redundant-neighbour
// removal. Construction is deterministic for a given cfg.Seed.
func Build(embs map[hetgraph.NodeID]vec.Vec32, cfg Config) *Index {
	return BuildWithRand(embs, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// BuildWithRand is Build with the random source injected. The only
// randomness in construction is NNDescent's kNN-graph initialisation, and
// it draws exclusively from rng — never the global math/rand source — so
// two builds over equal embeddings with identically seeded rngs produce
// identical indexes. Cluster shards rely on this to rebuild bit-identical
// per-shard indexes independently on every replica. Construction always
// uses exact float32 distances — quantization affects search only, so the
// graph is identical with and without ExactOnly.
func BuildWithRand(embs map[hetgraph.NodeID]vec.Vec32, cfg Config, rng *rand.Rand) *Index {
	cfg = cfg.withDefaults()
	idx := &Index{pos: make(map[hetgraph.NodeID]int32, len(embs)), exactOnly: cfg.ExactOnly}
	idx.ids = make([]hetgraph.NodeID, 0, len(embs))
	for id := range embs {
		idx.ids = append(idx.ids, id)
	}
	sort.Slice(idx.ids, func(i, j int) bool { return idx.ids[i] < idx.ids[j] })
	if len(idx.ids) == 0 {
		return idx
	}
	dim := embs[idx.ids[0]].Dim()
	idx.embs = vec.NewMatrix32(len(idx.ids), dim)
	for i, id := range idx.ids {
		copy(idx.embs.Row(i), embs[id])
		idx.pos[id] = int32(i)
	}
	if !cfg.ExactOnly {
		idx.quant = vec.Quantize(idx.embs)
	}

	// (1) Navigating node: the paper whose representation is closest to
	// the centroid g of all papers.
	rows := make([]vec.Vec32, idx.embs.Rows)
	for i := range rows {
		rows[i] = idx.embs.Row(i)
	}
	centroid := vec.Mean32(rows)
	best, bestD := 0, vec.L2Sq32(idx.embs.Row(0), centroid)
	for i := 1; i < idx.embs.Rows; i++ {
		if d := vec.L2Sq32(idx.embs.Row(i), centroid); d < bestD {
			best, bestD = i, d
		}
	}
	idx.nav = int32(best)

	// (2) Initialise the kNN graph with NNDescent.
	knn := nnDescent(idx.embs, cfg.K, cfg.MaxIters, rng)

	if !cfg.Refine {
		idx.nbrs = knn
		idx.ensureReachable()
		idx.pickEntries()
		return idx
	}

	// (3) Refine neighbours: extend with two-hop "highway" candidates,
	// then drop occluded (redundant) ones.
	idx.nbrs = make([][]int32, len(knn))
	for p := range knn {
		cands := map[int32]bool{}
		for _, x := range knn[p] {
			cands[x] = true
			for _, y := range knn[x] {
				if int(y) != p {
					cands[y] = true
				}
			}
		}
		idx.nbrs[p] = idx.refineNeighbors(int32(p), cands, cfg.MaxDegree)
	}

	// (4) Connectivity repair: occlusion pruning can disconnect tightly
	// clustered corpora from the navigating node (every cross-cluster edge
	// is "redundant" under near-tied distances), leaving greedy search
	// stranded. As in NSG/Vamana, link every unreachable node to its
	// nearest reachable one so the search tree spans all papers.
	idx.ensureReachable()
	idx.pickEntries()
	return idx
}

// l2sqDense returns the exact squared distance between dense rows a and b.
func (idx *Index) l2sqDense(a, b int32) float32 {
	return vec.L2Sq32(idx.embs.Row(int(a)), idx.embs.Row(int(b)))
}

// pickEntries selects up to 32 stratified extra entry points (every
// n/32-th node in dense order), deterministic for a given corpus.
func (idx *Index) pickEntries() {
	n := len(idx.ids)
	const want = 32
	if n <= want {
		return
	}
	stride := n / want
	for i := 0; i < n; i += stride {
		idx.entries = append(idx.entries, int32(i))
	}
}

// ensureReachable makes every node reachable from the navigating node by
// BFS over out-edges, adding bidirectional links from stranded nodes to
// their nearest reachable node.
func (idx *Index) ensureReachable() {
	n := len(idx.ids)
	if n == 0 {
		return
	}
	reached := make([]bool, n)
	var reachable []int32
	var bfs func(start int32)
	bfs = func(start int32) {
		queue := []int32{start}
		reached[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			reachable = append(reachable, v)
			for _, u := range idx.nbrs[v] {
				if !reached[u] {
					reached[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	bfs(idx.nav)
	for u := int32(0); int(u) < n; u++ {
		if reached[u] {
			continue
		}
		// Nearest currently reachable node to u.
		best, bestD := reachable[0], idx.l2sqDense(u, reachable[0])
		for _, v := range reachable[1:] {
			if d := idx.l2sqDense(u, v); d < bestD {
				best, bestD = v, d
			}
		}
		idx.nbrs[best] = append(idx.nbrs[best], u)
		idx.nbrs[u] = append(idx.nbrs[u], best)
		bfs(u)
	}
}

// refineNeighbors applies the redundant-neighbour removal of Algorithm 2
// (lines 9-12): visiting candidates in ascending distance from p, a
// candidate y is redundant — and removed — if some already-kept neighbour x
// satisfies δ(x,y) <= δ(y,p), because the search can reach y through x.
func (idx *Index) refineNeighbors(p int32, cands map[int32]bool, maxDegree int) []int32 {
	type cd struct {
		id   int32
		dist float32
	}
	list := make([]cd, 0, len(cands))
	for c := range cands {
		list = append(list, cd{c, idx.l2sqDense(p, c)})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].dist != list[j].dist {
			return list[i].dist < list[j].dist
		}
		return list[i].id < list[j].id
	})
	var kept []int32
	for _, c := range list {
		if len(kept) >= maxDegree {
			break
		}
		redundant := false
		for _, x := range kept {
			if idx.l2sqDense(x, c.id) <= c.dist {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c.id)
		}
	}
	return kept
}

// SearchStats reports the work done by one search, for the efficiency
// experiments (Figure 5's expansion/visit counts).
type SearchStats struct {
	DistanceComputations int
	NodesVisited         int
	Expansions           int
}

// Search returns the m papers most similar to the query representation,
// using greedy best-first expansion from the navigating node (§IV-B) with
// a candidate pool of size max(m, ef), seeded with the stratified entry
// points. ef=0 uses 2m. Results are sorted ascending by distance, ties by
// paper id — the same canonical order as BruteForce.
func (idx *Index) Search(query vec.Vec32, m, ef int) ([]Result, SearchStats) {
	return idx.SearchEx(query, m, ef, true)
}

// SearchCtx is Search with cooperative cancellation: the greedy expansion
// loop checks ctx every cancelCheckEvery expansions and returns ctx.Err()
// with the partial stats when the deadline passed or the caller went away.
func (idx *Index) SearchCtx(ctx context.Context, query vec.Vec32, m, ef int) ([]Result, SearchStats, error) {
	return idx.searchCtx(ctx, query, m, ef, true)
}

// SearchEx is Search with the entry strategy exposed: multiEntry=false
// starts from the navigating node alone, the paper's original §IV-B
// procedure (used by the Figure 5 experiment to isolate the effect of the
// Algorithm 2 refinement); multiEntry=true additionally seeds the
// stratified entries, which rescue greedy search on tightly clustered
// fine-tuned corpora (see DESIGN.md).
func (idx *Index) SearchEx(query vec.Vec32, m, ef int, multiEntry bool) ([]Result, SearchStats) {
	res, st, _ := idx.searchCtx(context.Background(), query, m, ef, multiEntry)
	return res, st
}

// cancelCheckEvery spaces the context polls of SearchCtx: one atomic load
// per this many node expansions, cheap next to the distance computations
// an expansion performs.
const cancelCheckEvery = 32

// minEF floors the search pool regardless of the requested ef (see
// searchCtx).
const minEF = 8

// distEntry pairs a dense node index with its (squared) distance to the
// current query.
type distEntry struct {
	id   int32
	dist float32
}

// searchScratch is the per-search working memory, recycled through a
// package-level pool so steady-state queries allocate only their result
// slice. visited is an epoch-stamped array: marking a node is one store,
// clearing all marks is one epoch increment.
type searchScratch struct {
	visited []uint32
	epoch   uint32
	cand    []distEntry // min-heap of unexpanded candidates
	pool    []distEntry // max-heap of current best ef results
	qcodes  []int8
}

var scratchPool = sync.Pool{New: func() interface{} { return &searchScratch{} }}

func getScratch(n, dim int) *searchScratch {
	s := scratchPool.Get().(*searchScratch)
	if len(s.visited) < n {
		s.visited = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	if cap(s.qcodes) < dim {
		s.qcodes = make([]int8, dim)
	}
	s.cand = s.cand[:0]
	s.pool = s.pool[:0]
	return s
}

func (idx *Index) searchCtx(ctx context.Context, query vec.Vec32, m, ef int, multiEntry bool) ([]Result, SearchStats, error) {
	var st SearchStats
	n := len(idx.ids)
	if n == 0 || m <= 0 {
		return nil, st, ctx.Err()
	}
	if m > n {
		m = n
	}
	if ef < m {
		ef = 2 * m
		if ef < m {
			ef = m
		}
	}
	// Floor the pool size: quantized candidate scores have a resolution of
	// ~1/127 of the row scale, so a one- or two-slot pool rejects near-ties
	// the exact re-rank would have promoted. A small floor costs a handful
	// of distance computations and applies to both modes symmetrically.
	if ef < minEF {
		ef = minEF
	}

	// Exhaustive fast path: when the pool would admit every live paper
	// anyway, graph traversal is pure overhead — scan the flat matrix with
	// the exact kernels instead. Both quantized and exact-only indexes take
	// this path, and it performs the same distance computations as
	// BruteForce, so results agree bit for bit across all of them.
	if ef >= idx.Len() {
		return idx.searchExhaustive(ctx, query, m, &st)
	}

	s := getScratch(n, idx.embs.Cols)
	defer scratchPool.Put(s)

	// Traversal distances: quantized codes when available, exact float32
	// kernels otherwise. Quantized distances steer the walk and the pool
	// only — the final ranking below is always exact.
	useQuant := idx.quant != nil
	var qCodes []int8
	var qScale, qSqNorm float32
	if useQuant {
		qCodes = s.qcodes[:idx.embs.Cols]
		qScale, qSqNorm = vec.QuantizeRow(qCodes, query)
	}

	push := func(i int32) {
		if s.visited[i] == s.epoch {
			return
		}
		s.visited[i] = s.epoch
		var d float32
		if useQuant {
			d = idx.quant.ApproxL2Sq(int(i), qCodes, qScale, qSqNorm)
		} else {
			d = vec.L2Sq32(idx.embs.Row(int(i)), query)
		}
		st.DistanceComputations++
		st.NodesVisited++
		if idx.isDead(i) {
			// Tombstoned papers keep routing traffic but never enter the
			// result pool.
			heapPushMin(&s.cand, distEntry{i, d})
			return
		}
		if len(s.pool) < ef {
			heapPushMin(&s.cand, distEntry{i, d})
			heapPushMax(&s.pool, distEntry{i, d})
		} else if d < s.pool[0].dist {
			heapPushMin(&s.cand, distEntry{i, d})
			heapPopMax(&s.pool)
			heapPushMax(&s.pool, distEntry{i, d})
		}
	}
	push(idx.nav)
	if multiEntry {
		for _, e := range idx.entries {
			push(e)
		}
	}
	for len(s.cand) > 0 {
		cur := heapPopMin(&s.cand)
		if len(s.pool) >= ef && cur.dist > s.pool[0].dist {
			break // the nearest unexpanded candidate cannot improve the pool
		}
		if st.Expansions%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				st.record()
				return nil, st, err
			}
		}
		st.Expansions++
		for _, nb := range idx.nbrs[cur.id] {
			push(nb)
		}
	}

	// Exact re-rank of the ENTIRE pool (not just the top-m): quantized
	// distances decide who made the pool, exact float32 kernels decide the
	// published order. Ties break by paper id, matching BruteForce.
	final := s.pool
	if useQuant {
		for i := range final {
			final[i].dist = vec.L2Sq32(idx.embs.Row(int(final[i].id)), query)
			st.DistanceComputations++
		}
	}
	idx.sortCanonical(final)
	if len(final) > m {
		final = final[:m]
	}
	res := make([]Result, len(final))
	for i, e := range final {
		res[i] = Result{ID: idx.ids[e.id], Dist: sqrt(float64(e.dist))}
	}
	st.record()
	return res, st, nil
}

// searchExhaustive scans every live row of the flat embedding matrix with
// exact kernels and returns the canonical top-m.
func (idx *Index) searchExhaustive(ctx context.Context, query vec.Vec32, m int, st *SearchStats) ([]Result, SearchStats, error) {
	n := len(idx.ids)
	all := make([]distEntry, 0, idx.Len())
	for i := 0; i < n; i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				st.record()
				return nil, *st, err
			}
		}
		if idx.isDead(int32(i)) {
			continue
		}
		all = append(all, distEntry{int32(i), vec.L2Sq32(idx.embs.Row(i), query)})
	}
	st.DistanceComputations += len(all)
	st.NodesVisited += len(all)
	idx.sortCanonical(all)
	if len(all) > m {
		all = all[:m]
	}
	res := make([]Result, len(all))
	for i, e := range all {
		res[i] = Result{ID: idx.ids[e.id], Dist: sqrt(float64(e.dist))}
	}
	st.record()
	return res, *st, nil
}

// BruteForce scans every embedding and returns the exact m nearest papers
// to the query, sorted ascending by distance — the "w/o PG-Index" variant.
func BruteForce(embs map[hetgraph.NodeID]vec.Vec32, query vec.Vec32, m int) []Result {
	all := make([]Result, 0, len(embs))
	for id, e := range embs {
		all = append(all, Result{ID: id, Dist: query.L2(e)})
	}
	slices.SortFunc(all, func(a, b Result) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	if len(all) > m {
		all = all[:m]
	}
	return all
}

// sortCanonical orders distance entries by the package's canonical total
// order — distance ascending, NodeID ascending — via slices.SortFunc,
// which monomorphises the comparator instead of boxing it the way
// sort.Slice does; the sort dominates the exhaustive search path.
func (idx *Index) sortCanonical(es []distEntry) {
	ids := idx.ids
	slices.SortFunc(es, func(a, b distEntry) int {
		switch {
		case a.dist < b.dist:
			return -1
		case a.dist > b.dist:
			return 1
		case ids[a.id] < ids[b.id]:
			return -1
		case ids[a.id] > ids[b.id]:
			return 1
		}
		return 0
	})
}

// Len returns the number of live (searchable) papers.
func (idx *Index) Len() int { return len(idx.ids) - idx.numDead }

// NavigatingNode returns the entry paper of the index.
func (idx *Index) NavigatingNode() hetgraph.NodeID { return idx.ids[idx.nav] }

// Neighbors returns the refined out-neighbours of paper p, for tests and
// diagnostics.
func (idx *Index) Neighbors(p hetgraph.NodeID) []hetgraph.NodeID {
	i, ok := idx.pos[p]
	if !ok {
		return nil
	}
	out := make([]hetgraph.NodeID, len(idx.nbrs[i]))
	for j, nb := range idx.nbrs[i] {
		out[j] = idx.ids[nb]
	}
	return out
}

// NumEdges returns the total number of directed proximity edges, the
// index-size figure of Table VI.
func (idx *Index) NumEdges() int {
	n := 0
	for _, nb := range idx.nbrs {
		n += len(nb)
	}
	return n
}

// MemoryBytes estimates the index's resident size: float32 embeddings,
// int8 codes when quantization is on, adjacency, and the id maps (Table
// VI's memory column).
func (idx *Index) MemoryBytes() int64 {
	var b int64
	if idx.embs != nil {
		b += int64(len(idx.embs.Data)) * 4
	}
	if idx.quant != nil {
		b += idx.quant.MemoryBytes()
	}
	b += int64(idx.NumEdges()) * 4
	b += int64(len(idx.ids)) * (4 + 8) // ids slice + pos map entries (approx)
	return b
}

// Embedding returns the indexed representation of p, or nil.
func (idx *Index) Embedding(p hetgraph.NodeID) vec.Vec32 {
	i, ok := idx.pos[p]
	if !ok {
		return nil
	}
	return idx.embs.Row(int(i))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func (idx *Index) String() string {
	return fmt.Sprintf("pgindex: %d papers, %d edges, nav=%d", idx.Len(), idx.NumEdges(), idx.nav)
}

// heapPushMin/heapPopMin maintain a binary min-heap over dist in a plain
// slice; heapPushMax/heapPopMax the max-heap dual. Hand-rolled because
// container/heap's interface boxing dominated the search profile.
func heapPushMin(h *[]distEntry, e distEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist <= s[i].dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func heapPopMin(h *[]distEntry) distEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && s[l].dist < s[sm].dist {
			sm = l
		}
		if r < n && s[r].dist < s[sm].dist {
			sm = r
		}
		if sm == i {
			break
		}
		s[i], s[sm] = s[sm], s[i]
		i = sm
	}
	*h = s
	return top
}

func heapPushMax(h *[]distEntry, e distEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist >= s[i].dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func heapPopMax(h *[]distEntry) distEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		lg := i
		if l < n && s[l].dist > s[lg].dist {
			lg = l
		}
		if r < n && s[r].dist > s[lg].dist {
			lg = r
		}
		if lg == i {
			break
		}
		s[i], s[lg] = s[lg], s[i]
		i = lg
	}
	*h = s
	return top
}
