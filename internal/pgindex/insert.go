package pgindex

import (
	"fmt"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// Insert adds a newly embedded paper to an existing index without a full
// rebuild, so a corpus can grow between offline builds. The new node's
// out-neighbours are chosen by searching the current graph for its
// nearest candidates and applying the same occlusion rule as Algorithm 2;
// reverse edges are added (re-pruned when a neighbour's list overflows)
// so the node is reachable. The first insert into an empty index makes
// the node the navigating node.
func (idx *Index) Insert(id hetgraph.NodeID, v vec.Vec32) error {
	if _, dup := idx.pos[id]; dup {
		return fmt.Errorf("pgindex: paper %d already indexed", id)
	}
	if idx.embs == nil || idx.embs.Rows == 0 {
		// First insert (or an index built over nothing): the new paper
		// fixes the dimensionality.
		idx.embs = vec.NewMatrix32(0, v.Dim())
		if !idx.exactOnly {
			idx.quant = &vec.Quantized{Cols: v.Dim()}
		}
	}
	if v.Dim() != idx.embs.Cols {
		return fmt.Errorf("pgindex: dimension %d != index dimension %d", v.Dim(), idx.embs.Cols)
	}

	dense := int32(len(idx.ids))
	idx.ids = append(idx.ids, id)
	idx.embs.AppendRow(v)
	if idx.quant != nil {
		idx.quant.AppendRow(v)
	}
	idx.pos[id] = dense
	idx.nbrs = append(idx.nbrs, nil)
	if dense == 0 {
		idx.nav = 0
		return nil
	}

	// Candidate neighbours: the nearest nodes under the current graph
	// (over-fetched, then occlusion-pruned like refineNeighbors).
	const maxDegree = 20 // matches DefaultConfig: 2*K
	res, _ := idx.searchDense(v, maxDegree*3)
	cands := map[int32]bool{}
	for _, r := range res {
		cands[r] = true
	}
	// The exhaustive search path scans every row, including the one just
	// appended; as a candidate for itself it sits at distance zero and
	// occludes everything, leaving the node an island.
	delete(cands, dense)
	idx.nbrs[dense] = idx.refineNeighbors(dense, cands, maxDegree)

	// Reverse edges keep the new node reachable; overflowing lists are
	// re-pruned with the same rule.
	for _, nb := range idx.nbrs[dense] {
		idx.nbrs[nb] = append(idx.nbrs[nb], dense)
		if len(idx.nbrs[nb]) > maxDegree*2 {
			c := map[int32]bool{}
			for _, x := range idx.nbrs[nb] {
				c[x] = true
			}
			idx.nbrs[nb] = idx.refineNeighbors(nb, c, maxDegree)
		}
	}
	if len(idx.nbrs[dense]) == 0 {
		// Degenerate geometry (e.g. exact duplicates): link to the
		// navigating node so reachability holds.
		idx.nbrs[dense] = append(idx.nbrs[dense], idx.nav)
		idx.nbrs[idx.nav] = append(idx.nbrs[idx.nav], dense)
	}
	return nil
}

// searchDense is Search returning dense indices, for internal use.
func (idx *Index) searchDense(q vec.Vec32, m int) ([]int32, SearchStats) {
	res, st := idx.Search(q, m, 0)
	out := make([]int32, len(res))
	for i, r := range res {
		out[i] = idx.pos[r.ID]
	}
	return out, st
}
