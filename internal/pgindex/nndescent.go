// Package pgindex implements the paper's proximity-graph document index
// (§IV-A): a kNN graph built with NNDescent [36], refined with
// long-distance neighbour extension and redundant-neighbour removal
// (Algorithm 2), a navigating entry node at the corpus centroid, and the
// greedy best-first search of §IV-B. A brute-force scan is provided as the
// exact baseline ("w/o PG-Index" in Figure 7).
package pgindex

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"expertfind/internal/vec"
)

// neighbor is one candidate entry in a node's kNN list.
type neighbor struct {
	id    int32
	dist  float64
	isNew bool
}

// knnList is a bounded list of the k closest neighbours found so far,
// kept sorted ascending by distance. k is small (≈10), so insertion by
// shifting beats heap bookkeeping in practice.
type knnList struct {
	k     int
	items []neighbor
}

func newKnnList(k int) *knnList { return &knnList{k: k, items: make([]neighbor, 0, k)} }

// insert adds cand if it improves the list and is not already present.
// It reports whether the list changed.
func (l *knnList) insert(cand neighbor) bool {
	if len(l.items) == l.k && cand.dist >= l.items[len(l.items)-1].dist {
		return false
	}
	for _, it := range l.items {
		if it.id == cand.id {
			return false
		}
	}
	pos := sort.Search(len(l.items), func(i int) bool { return l.items[i].dist > cand.dist })
	if len(l.items) < l.k {
		l.items = append(l.items, neighbor{})
	}
	copy(l.items[pos+1:], l.items[pos:])
	l.items[pos] = cand
	return true
}

// proposal is one candidate edge produced by a parallel local join.
type proposal struct {
	a, b int32
	dist float64
}

// nnDescent builds a kNN graph over embs (dense indices) and returns each
// node's k nearest neighbour ids. It follows Dong et al.'s local-join
// scheme: initialise with random neighbours, then repeatedly join each
// node's new neighbours against its general (forward+reverse) neighbours,
// stopping when an iteration's update count falls below delta·n·k.
//
// Distance evaluation — the dominant cost — runs in parallel over fixed
// node chunks; proposals are applied in chunk order, so the result is
// deterministic for a given seed regardless of GOMAXPROCS.
func nnDescent(embs *vec.Matrix32, k, maxIters int, rng *rand.Rand) [][]int32 {
	n := embs.Rows
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		out := make([][]int32, n)
		return out
	}
	lists := make([]*knnList, n)
	for i := range lists {
		lists[i] = newKnnList(k)
	}
	// Random initialisation.
	for i := 0; i < n; i++ {
		for len(lists[i].items) < k {
			j := int32(rng.Intn(n))
			if int(j) == i {
				continue
			}
			lists[i].insert(neighbor{id: j, dist: pairDist(embs, int32(i), j), isNew: true})
		}
	}

	const delta = 0.001
	const chunkSize = 256
	workers := runtime.GOMAXPROCS(0)

	for iter := 0; iter < maxIters; iter++ {
		// Collect per-node new and old neighbour sets, including reverse
		// edges (the "general" neighbourhood of the paper).
		newN := make([][]int32, n)
		oldN := make([][]int32, n)
		for i := 0; i < n; i++ {
			for li := range lists[i].items {
				it := &lists[i].items[li]
				if it.isNew {
					newN[i] = append(newN[i], it.id)
					newN[it.id] = append(newN[it.id], int32(i))
					it.isNew = false
				} else {
					oldN[i] = append(oldN[i], it.id)
					oldN[it.id] = append(oldN[it.id], int32(i))
				}
			}
		}
		updates := 0
		for lo := 0; lo < n; lo += chunkSize {
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			// Parallel phase: enumerate candidate pairs of this chunk and
			// price them against the lists as of the chunk start.
			props := make([][]proposal, hi-lo)
			var wg sync.WaitGroup
			per := (hi - lo + workers - 1) / workers
			for w := 0; w < workers; w++ {
				s := lo + w*per
				e := s + per
				if e > hi {
					e = hi
				}
				if s >= e {
					continue
				}
				wg.Add(1)
				go func(s, e int) {
					defer wg.Done()
					for i := s; i < e; i++ {
						props[i-lo] = joinCandidates(embs, dedupIDs(newN[i]), dedupIDs(oldN[i]))
					}
				}(s, e)
			}
			wg.Wait()
			// Sequential phase: apply proposals in node order.
			for _, ps := range props {
				for _, p := range ps {
					if lists[p.a].insert(neighbor{id: p.b, dist: p.dist, isNew: true}) {
						updates++
					}
					if lists[p.b].insert(neighbor{id: p.a, dist: p.dist, isNew: true}) {
						updates++
					}
				}
			}
		}
		if float64(updates) < delta*float64(n)*float64(k) {
			break
		}
	}

	out := make([][]int32, n)
	for i := range lists {
		ids := make([]int32, len(lists[i].items))
		for j, it := range lists[i].items {
			ids[j] = it.id
		}
		out[i] = ids
	}
	return out
}

// joinCandidates produces the local-join proposals of one node: new x new
// and new x old pairs among its general neighbours, with distances.
func joinCandidates(embs *vec.Matrix32, nn, on []int32) []proposal {
	var out []proposal
	for ai, a := range nn {
		for _, b := range nn[ai+1:] {
			if a != b {
				out = append(out, proposal{a: a, b: b, dist: pairDist(embs, a, b)})
			}
		}
		for _, b := range on {
			if a != b {
				out = append(out, proposal{a: a, b: b, dist: pairDist(embs, a, b)})
			}
		}
	}
	return out
}

// pairDist is the squared distance between two dense rows, widened to the
// float64 the kNN lists order by.
func pairDist(embs *vec.Matrix32, a, b int32) float64 {
	return float64(vec.L2Sq32(embs.Row(int(a)), embs.Row(int(b))))
}

func dedupIDs(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
