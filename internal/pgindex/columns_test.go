package pgindex

import (
	"math"
	"math/rand"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

func buildTestIndex(t *testing.T, n, dim int, exactOnly bool) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	embs := make(map[hetgraph.NodeID]vec.Vec32, n)
	for i := 0; i < n; i++ {
		v := make(vec.Vec32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		embs[hetgraph.NodeID(i*3+1)] = v
	}
	return Build(embs, Config{K: 4, Refine: true, Seed: 5, ExactOnly: exactOnly})
}

// TestColumnsRoundTrip proves Columns → FromColumns reproduces the index
// exactly: identical search results (distances compared as raw bits),
// identical adjacency, identical quantized shadow.
func TestColumnsRoundTrip(t *testing.T) {
	for _, exact := range []bool{false, true} {
		idx := buildTestIndex(t, 120, 8, exact)
		if err := idx.Remove(idx.ids[7]); err != nil {
			t.Fatal(err)
		}

		got, err := FromColumns(idx.Columns())
		if err != nil {
			t.Fatalf("exact=%v: FromColumns: %v", exact, err)
		}

		if got.Len() != idx.Len() || got.nav != idx.nav || got.exactOnly != idx.exactOnly {
			t.Fatalf("exact=%v: header mismatch: %v vs %v", exact, got, idx)
		}
		for i := range idx.nbrs {
			if len(got.nbrs[i]) != len(idx.nbrs[i]) {
				t.Fatalf("exact=%v: node %d degree %d vs %d", exact, i, len(got.nbrs[i]), len(idx.nbrs[i]))
			}
			for j := range idx.nbrs[i] {
				if got.nbrs[i][j] != idx.nbrs[i][j] {
					t.Fatalf("exact=%v: node %d nbr %d mismatch", exact, i, j)
				}
			}
		}
		if (idx.quant == nil) != (got.quant == nil) {
			t.Fatalf("exact=%v: quant presence mismatch", exact)
		}
		if idx.quant != nil {
			for i := range idx.quant.Codes {
				if got.quant.Codes[i] != idx.quant.Codes[i] {
					t.Fatalf("exact=%v: quant code %d mismatch", exact, i)
				}
			}
		}

		query := make(vec.Vec32, 8)
		for j := range query {
			query[j] = float32(j) * 0.25
		}
		want, _ := idx.Search(query, 10, 32)
		have, _ := got.Search(query, 10, 32)
		if len(want) != len(have) {
			t.Fatalf("exact=%v: result count %d vs %d", exact, len(have), len(want))
		}
		for i := range want {
			if want[i].ID != have[i].ID ||
				math.Float64bits(want[i].Dist) != math.Float64bits(have[i].Dist) {
				t.Fatalf("exact=%v: result %d: %+v vs %+v", exact, i, have[i], want[i])
			}
		}
	}
}

// TestFromColumnsCSRViewsFullCap pins the mmap safety property at this
// layer: adjacency views must be capped at their length, so the reverse
// edge Insert appends lands in a fresh heap allocation, never in the
// (possibly read-only, possibly neighbouring-list) backing block.
func TestFromColumnsCSRViewsFullCap(t *testing.T) {
	idx := buildTestIndex(t, 60, 4, false)
	got, err := FromColumns(idx.Columns())
	if err != nil {
		t.Fatal(err)
	}
	for i, nb := range got.nbrs {
		if cap(nb) != len(nb) {
			t.Fatalf("node %d adjacency view cap %d != len %d", i, cap(nb), len(nb))
		}
	}
	// Exercise the real hazard: Insert appends reverse edges to existing
	// lists. After the insert the original columns must be untouched.
	cols := got.Columns()
	before := append([]int32(nil), cols.NbrDat...)
	v := make(vec.Vec32, 4)
	for j := range v {
		v[j] = 0.5
	}
	reloaded, err := FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	reloaded.Insert(hetgraph.NodeID(9999), v)
	for i := range before {
		if cols.NbrDat[i] != before[i] {
			t.Fatalf("Insert scribbled on shared CSR data at %d", i)
		}
	}
}

func TestFromColumnsRejectsCorruptShapes(t *testing.T) {
	idx := buildTestIndex(t, 40, 4, false)
	base := idx.Columns()

	mutate := func(f func(c *Columns)) Columns {
		c := base
		c.NbrOff = append([]uint64(nil), base.NbrOff...)
		c.NbrDat = append([]int32(nil), base.NbrDat...)
		c.Entries = append([]int32(nil), base.Entries...)
		f(&c)
		return c
	}
	cases := map[string]Columns{
		"truncated offsets":  mutate(func(c *Columns) { c.NbrOff = c.NbrOff[:len(c.NbrOff)-1] }),
		"decreasing offsets": mutate(func(c *Columns) { c.NbrOff[1] = c.NbrOff[2] + 5; c.NbrOff[2] = 0 }),
		"dangling edge":      mutate(func(c *Columns) { c.NbrDat[0] = int32(len(c.IDs)) }),
		"negative edge":      mutate(func(c *Columns) { c.NbrDat[0] = -1 }),
		"bad nav":            mutate(func(c *Columns) { c.Nav = int32(len(c.IDs)) }),
		"bad entry":          mutate(func(c *Columns) { c.Entries[0] = -2 }),
		"short matrix":       mutate(func(c *Columns) { c.Embs = c.Embs[:len(c.Embs)-1] }),
		"bad dead count":     mutate(func(c *Columns) { c.Dead = make([]byte, len(c.IDs)); c.Dead[0] = 1 }),
		"short quant":        mutate(func(c *Columns) { c.QScales = c.QScales[:1] }),
	}
	for name, c := range cases {
		if _, err := FromColumns(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := FromColumns(base); err != nil {
		t.Errorf("valid columns rejected: %v", err)
	}
}
