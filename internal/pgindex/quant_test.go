package pgindex

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// requireSameResults asserts two result lists are identical: same IDs in
// the same order with bit-identical distances.
func requireSameResults(t *testing.T, label string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result sizes differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("%s: rank %d: id %d vs %d", label, i, a[i].ID, b[i].ID)
		}
		if math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			t.Fatalf("%s: rank %d: dist bits differ: %v vs %v", label, i, a[i].Dist, b[i].Dist)
		}
	}
}

// TestExactVsQuantizedSearch builds the same corpus twice — once with the
// int8 candidate-scoring fast path, once exact-only — and demands
// bit-identical results across query shapes and ef settings. The exact
// re-rank of the candidate pool is what makes this hold: quantization may
// only change which nodes get explored, never the reported distances, and
// with enough exploration both paths converge on the true top-m.
func TestExactVsQuantizedSearch(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corpus  func(*rand.Rand) map[hetgraph.NodeID]vec.Vec32
		m, ef   int
		queries int
	}{
		{"random-exhaustive", func(r *rand.Rand) map[hetgraph.NodeID]vec.Vec32 { return randomEmbeddings(r, 120, 16) }, 10, 0, 20},
		{"random-wide-ef", func(r *rand.Rand) map[hetgraph.NodeID]vec.Vec32 { return randomEmbeddings(r, 300, 16) }, 10, 128, 20},
		{"clustered-wide-ef", func(r *rand.Rand) map[hetgraph.NodeID]vec.Vec32 { return clusteredEmbeddings(r, 20, 15, 12) }, 15, 128, 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			embs := tc.corpus(rng)
			quant := Build(embs, Config{Refine: true, Seed: 4})
			exact := Build(embs, Config{Refine: true, Seed: 4, ExactOnly: true})
			if quant.quant == nil || exact.quant != nil {
				t.Fatal("quantization mode not wired through Config")
			}
			// Same graph either way: Build always uses exact distances.
			if quant.NumEdges() != exact.NumEdges() || quant.NavigatingNode() != exact.NavigatingNode() {
				t.Fatal("graphs differ between quantized and exact builds")
			}
			for q := 0; q < tc.queries; q++ {
				query := embs[hetgraph.NodeID(rng.Intn(len(embs)))].Clone()
				for j := range query {
					query[j] += float32(rng.NormFloat64() * 0.05)
				}
				a, _ := quant.Search(query, tc.m, tc.ef)
				b, _ := exact.Search(query, tc.m, tc.ef)
				requireSameResults(t, tc.name, a, b)
			}
		})
	}
}

// TestExactVsQuantizedTieOrder forces exact ties with duplicated
// embeddings; both modes must break them identically (ascending NodeID).
func TestExactVsQuantizedTieOrder(t *testing.T) {
	embs := map[hetgraph.NodeID]vec.Vec32{}
	rng := rand.New(rand.NewSource(8))
	proto := make([]vec.Vec32, 5)
	for i := range proto {
		v := vec.New32(8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		proto[i] = v.Normalize()
	}
	// Ten copies of each prototype, interleaved IDs.
	for i := 0; i < 50; i++ {
		embs[hetgraph.NodeID(i)] = proto[i%5].Clone()
	}
	quant := Build(embs, Config{Refine: true, Seed: 2})
	exact := Build(embs, Config{Refine: true, Seed: 2, ExactOnly: true})
	for p := 0; p < 5; p++ {
		a, _ := quant.Search(proto[p], 12, 0)
		b, _ := exact.Search(proto[p], 12, 0)
		requireSameResults(t, "ties", a, b)
		// The ten exact duplicates lead, in ascending id order.
		for i := 0; i < 10; i++ {
			want := hetgraph.NodeID(p + 5*i)
			if a[i].ID != want || a[i].Dist != 0 {
				t.Fatalf("prototype %d rank %d = %v, want id %d dist 0", p, i, a[i], want)
			}
		}
	}
}

// TestQuantizedMatchesBruteForce checks the quantized index against the
// float oracle directly on the exhaustive path (ef >= corpus), where
// results must be exactly the true top-m.
func TestQuantizedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	embs := randomEmbeddings(rng, 90, 12)
	idx := Build(embs, Config{Refine: true, Seed: 6})
	for q := 0; q < 15; q++ {
		query := embs[hetgraph.NodeID(rng.Intn(len(embs)))].Clone()
		for j := range query {
			query[j] += float32(rng.NormFloat64() * 0.1)
		}
		got, _ := idx.Search(query, 8, 200)
		want := BruteForce(embs, query, 8)
		if len(got) != len(want) {
			t.Fatalf("sizes differ: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
				t.Fatalf("rank %d: got %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestInsertFindableExactOnly mirrors TestInsertFindable with the
// quantized fast path disabled, covering the exact traversal branch.
func TestInsertFindableExactOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	embs := randomEmbeddings(rng, 100, 8)
	idx := Build(embs, Config{Refine: true, Seed: 1, ExactOnly: true})
	for i := 0; i < 30; i++ {
		id := hetgraph.NodeID(1000 + i)
		v := vec.New32(8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		v.Normalize()
		if err := idx.Insert(id, v); err != nil {
			t.Fatal(err)
		}
		res, _ := idx.Search(v, 1, 0)
		if len(res) != 1 || res[0].ID != id {
			t.Fatalf("insert %d not retrievable: got %v", id, res)
		}
	}
}

// TestExactOnlySurvivesSerialization checks the mode round-trips and that
// quantized indexes rebuild their codes on load (codes are not persisted).
func TestExactOnlySurvivesSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	embs := randomEmbeddings(rng, 60, 8)
	for _, exactOnly := range []bool{false, true} {
		idx := Build(embs, Config{Refine: true, Seed: 2, ExactOnly: exactOnly})
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.exactOnly != exactOnly {
			t.Fatalf("exactOnly=%v lost in round trip", exactOnly)
		}
		if exactOnly && loaded.quant != nil {
			t.Fatal("exact-only index rebuilt quantized codes")
		}
		if !exactOnly {
			if loaded.quant == nil {
				t.Fatal("quantized codes not rebuilt on load")
			}
			for i := range idx.quant.Codes {
				if idx.quant.Codes[i] != loaded.quant.Codes[i] {
					t.Fatal("rebuilt codes differ from originals")
				}
			}
		}
		q := embs[hetgraph.NodeID(3)]
		a, _ := idx.Search(q, 5, 0)
		b, _ := loaded.Search(q, 5, 0)
		requireSameResults(t, "roundtrip", a, b)
	}
}
