package pgindex

import "sync/atomic"

// Sink receives named measurements from every Search, so a long-lived
// service can aggregate hop/visit counts across requests without the
// index depending on any metrics implementation (obs.Registry satisfies
// the interface). SearchStats remains the per-call report.
type Sink interface {
	Observe(name string, v float64)
}

// sinkBox wraps the interface so atomic.Value always stores one concrete
// type.
type sinkBox struct{ s Sink }

var sinkHolder atomic.Value

// SetSink installs the package-wide measurement sink; nil disables
// recording. Safe to call concurrently with searches.
func SetSink(s Sink) { sinkHolder.Store(sinkBox{s}) }

func currentSink() Sink {
	if b, ok := sinkHolder.Load().(sinkBox); ok {
		return b.s
	}
	return nil
}

// record forwards one search's stats to the sink, if installed.
func (st SearchStats) record() {
	s := currentSink()
	if s == nil {
		return
	}
	s.Observe("expertfind_pgindex_searches_total", 1)
	s.Observe("expertfind_pgindex_hops_total", float64(st.Expansions))
	s.Observe("expertfind_pgindex_nodes_visited_total", float64(st.NodesVisited))
	s.Observe("expertfind_pgindex_distance_computations_total", float64(st.DistanceComputations))
}
