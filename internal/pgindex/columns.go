package pgindex

import (
	"fmt"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

// Columns is the flat, fixed-width decomposition of an Index — the form
// the columnar snapshot store persists. Adjacency is CSR (NbrOff[i] to
// NbrOff[i+1] index NbrDat); the embedding matrix is one row-major
// float32 block; the int8 quantization shadow rides along so a load
// never re-codes. Every slice is either a save-time view of live index
// storage (Columns) or, on load, may alias a read-only mmap'd snapshot
// (FromColumns) — neither direction copies the big blocks.
type Columns struct {
	IDs       []hetgraph.NodeID
	Dim       int
	Embs      []float32 // row-major, len(IDs) x Dim
	ExactOnly bool
	NbrOff    []uint64 // len(IDs)+1 CSR offsets into NbrDat
	NbrDat    []int32  // concatenated out-neighbour lists
	Nav       int32
	Entries   []int32
	Dead      []byte // 1 = tombstoned; empty when NumDead == 0
	NumDead   int
	QCodes    []int8    // len(IDs) x Dim; empty when ExactOnly
	QScales   []float32 // len(IDs); empty when ExactOnly
	QNorms    []float32 // len(IDs); empty when ExactOnly
}

// Columns decomposes the index into its columnar form. The embedding,
// id, entry and quantization slices are views of live index storage
// (valid while the index is not mutated); adjacency is flattened into a
// fresh CSR pair.
func (idx *Index) Columns() Columns {
	c := Columns{
		IDs:       idx.ids,
		ExactOnly: idx.exactOnly,
		Nav:       idx.nav,
		Entries:   idx.entries,
		NumDead:   idx.numDead,
	}
	if idx.embs != nil {
		c.Dim = idx.embs.Cols
		c.Embs = idx.embs.Data
	}
	c.NbrOff = make([]uint64, len(idx.nbrs)+1)
	total := 0
	for i, nb := range idx.nbrs {
		total += len(nb)
		c.NbrOff[i+1] = uint64(total)
	}
	c.NbrDat = make([]int32, 0, total)
	for _, nb := range idx.nbrs {
		c.NbrDat = append(c.NbrDat, nb...)
	}
	if idx.numDead > 0 {
		c.Dead = make([]byte, len(idx.dead))
		for i, d := range idx.dead {
			if d {
				c.Dead[i] = 1
			}
		}
	}
	if idx.quant != nil {
		c.QCodes = idx.quant.Codes
		c.QScales = idx.quant.Scales
		c.QNorms = idx.quant.SqNorms
	}
	return c
}

// FromColumns reconstructs an Index from its columnar form without
// copying the large blocks: the embedding matrix adopts c.Embs, each
// adjacency list is a full-capacity sub-slice of c.NbrDat, and the
// quantization shadow adopts the code/scale/norm columns. Because the
// blocks may alias a read-only mapping, every view is capped at its
// length — an insert that appends to a list or the matrix reallocates
// onto the heap instead of writing through the mapping.
//
// All cross-column invariants are validated first (shape agreement, CSR
// monotonicity, neighbour/nav/entry ranges, dead count), so a forged or
// damaged snapshot fails loudly here rather than faulting mid-search.
func FromColumns(c Columns) (*Index, error) {
	n := len(c.IDs)
	if len(c.NbrOff) != n+1 {
		return nil, fmt.Errorf("pgindex: columns: %d CSR offsets for %d nodes", len(c.NbrOff), n)
	}
	if c.Dim < 0 || len(c.Embs) != n*c.Dim {
		return nil, fmt.Errorf("pgindex: columns: %d weights for %d x %d", len(c.Embs), n, c.Dim)
	}
	if c.NbrOff[0] != 0 || c.NbrOff[n] != uint64(len(c.NbrDat)) {
		return nil, fmt.Errorf("pgindex: columns: CSR ends [%d, %d] do not span %d edges",
			c.NbrOff[0], c.NbrOff[n], len(c.NbrDat))
	}
	for i := 0; i < n; i++ {
		if c.NbrOff[i] > c.NbrOff[i+1] {
			return nil, fmt.Errorf("pgindex: columns: CSR offset %d decreases at node %d", c.NbrOff[i+1], i)
		}
	}
	for i, nb := range c.NbrDat {
		if nb < 0 || int(nb) >= n {
			return nil, fmt.Errorf("pgindex: columns: out-of-range neighbour %d at edge %d", nb, i)
		}
	}
	if n > 0 && (c.Nav < 0 || int(c.Nav) >= n) {
		return nil, fmt.Errorf("pgindex: columns: navigating node %d out of range", c.Nav)
	}
	for _, e := range c.Entries {
		if e < 0 || int(e) >= n {
			return nil, fmt.Errorf("pgindex: columns: entry point %d out of range", e)
		}
	}
	if len(c.Dead) != 0 && len(c.Dead) != n {
		return nil, fmt.Errorf("pgindex: columns: %d tombstones for %d nodes", len(c.Dead), n)
	}

	idx := &Index{
		ids:       c.IDs,
		exactOnly: c.ExactOnly,
		nav:       c.Nav,
		entries:   c.Entries,
		pos:       make(map[hetgraph.NodeID]int32, n),
		numDead:   c.NumDead,
	}
	if n > 0 {
		idx.embs = &vec.Matrix32{Rows: n, Cols: c.Dim, Data: c.Embs}
	}
	idx.nbrs = make([][]int32, n)
	for i := 0; i < n; i++ {
		lo, hi := c.NbrOff[i], c.NbrOff[i+1]
		idx.nbrs[i] = c.NbrDat[lo:hi:hi]
	}
	dead := 0
	if len(c.Dead) > 0 {
		idx.dead = make([]bool, n)
		for i, d := range c.Dead {
			if d != 0 {
				idx.dead[i] = true
				dead++
			}
		}
	}
	if dead != c.NumDead {
		return nil, fmt.Errorf("pgindex: columns: %d tombstones set, NumDead %d", dead, c.NumDead)
	}
	for i, id := range c.IDs {
		if !idx.isDead(int32(i)) {
			idx.pos[id] = int32(i)
		}
	}
	if !c.ExactOnly && n > 0 {
		if len(c.QCodes) > 0 {
			if len(c.QCodes) != n*c.Dim || len(c.QScales) != n || len(c.QNorms) != n {
				return nil, fmt.Errorf("pgindex: columns: quant shapes %d/%d/%d for %d x %d",
					len(c.QCodes), len(c.QScales), len(c.QNorms), n, c.Dim)
			}
			idx.quant = &vec.Quantized{Rows: n, Cols: c.Dim, Codes: c.QCodes, Scales: c.QScales, SqNorms: c.QNorms}
		} else {
			// Quant columns absent (e.g. written by a config that skipped
			// them): re-code deterministically from the exact rows.
			idx.quant = vec.Quantize(idx.embs)
		}
	}
	return idx, nil
}
