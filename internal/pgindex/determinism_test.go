package pgindex

import (
	"math/rand"
	"reflect"
	"testing"
)

// indexFingerprint captures everything search behaviour depends on.
func indexFingerprint(idx *Index) (nav int32, nbrs [][]int32, entries []int32) {
	return idx.nav, idx.nbrs, idx.entries
}

func TestBuildDeterministicAcrossRuns(t *testing.T) {
	embs := clusteredEmbeddings(rand.New(rand.NewSource(3)), 6, 40, 16)
	cfg := Config{Refine: true, Seed: 42}
	a := Build(embs, cfg)
	b := Build(embs, cfg)
	an, ae, ax := indexFingerprint(a)
	bn, be, bx := indexFingerprint(b)
	if an != bn || !reflect.DeepEqual(ae, be) || !reflect.DeepEqual(ax, bx) {
		t.Fatal("two Build runs with the same seed differ")
	}
}

func TestBuildWithRandMatchesBuild(t *testing.T) {
	// BuildWithRand with a fresh rng seeded from cfg.Seed must reproduce
	// Build exactly: shard replicas rebuild indexes independently and rely
	// on this to serve identical partial rankings.
	embs := clusteredEmbeddings(rand.New(rand.NewSource(5)), 4, 50, 16)
	cfg := Config{Refine: true, Seed: 7}
	a := Build(embs, cfg)
	b := BuildWithRand(embs, cfg, rand.New(rand.NewSource(cfg.Seed)))
	an, ae, ax := indexFingerprint(a)
	bn, be, bx := indexFingerprint(b)
	if an != bn || !reflect.DeepEqual(ae, be) || !reflect.DeepEqual(ax, bx) {
		t.Fatal("BuildWithRand(seeded rng) differs from Build")
	}
}

func TestBuildSeedChangesInitialisation(t *testing.T) {
	// Different seeds must actually reach the rng (guards against a
	// regression to the global math/rand source, which would make the seed
	// a no-op and shard rebuilds nondeterministic).
	embs := randomEmbeddings(rand.New(rand.NewSource(9)), 300, 8)
	a := Build(embs, Config{Refine: false, MaxIters: 1, Seed: 1})
	b := Build(embs, Config{Refine: false, MaxIters: 1, Seed: 2})
	_, ae, _ := indexFingerprint(a)
	_, be, _ := indexFingerprint(b)
	if reflect.DeepEqual(ae, be) {
		t.Fatal("seed does not influence kNN initialisation")
	}
}
