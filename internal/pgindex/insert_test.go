package pgindex

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/vec"
)

func TestInsertIntoEmptyIndex(t *testing.T) {
	idx := Build(map[hetgraph.NodeID]vec.Vec32{}, Config{Refine: true})
	if err := idx.Insert(5, vec.Vec32{1, 0}); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 || idx.NavigatingNode() != 5 {
		t.Fatalf("empty-insert state: len %d, nav %d", idx.Len(), idx.NavigatingNode())
	}
	res, _ := idx.Search(vec.Vec32{1, 0}, 1, 0)
	if len(res) != 1 || res[0].ID != 5 {
		t.Errorf("search after first insert = %v", res)
	}
}

func TestInsertFindable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	embs := randomEmbeddings(rng, 100, 8)
	idx := Build(embs, Config{Refine: true, Seed: 1})

	// Insert 30 new points; each must be retrievable as its own nearest
	// neighbour afterwards.
	for i := 0; i < 30; i++ {
		id := hetgraph.NodeID(1000 + i)
		v := vec.New32(8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		v.Normalize()
		if err := idx.Insert(id, v); err != nil {
			t.Fatal(err)
		}
		res, _ := idx.Search(v, 1, 0)
		if len(res) != 1 || res[0].ID != id {
			t.Fatalf("insert %d not retrievable: got %v", id, res)
		}
	}
	if idx.Len() != 130 {
		t.Fatalf("len = %d, want 130", idx.Len())
	}

	// All nodes remain reachable from the navigating node.
	visited := map[int32]bool{idx.nav: true}
	queue := []int32{idx.nav}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range idx.nbrs[v] {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	if len(visited) != idx.Len() {
		t.Errorf("only %d/%d reachable after inserts", len(visited), idx.Len())
	}
}

func TestInsertRejectsDuplicatesAndBadDims(t *testing.T) {
	idx := Build(map[hetgraph.NodeID]vec.Vec32{1: {1, 0}}, Config{Refine: true})
	if err := idx.Insert(1, vec.Vec32{0, 1}); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := idx.Insert(2, vec.Vec32{0, 1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestInsertDuplicateGeometry(t *testing.T) {
	// Exact duplicate vectors can occlude everything; the node must still
	// become reachable.
	idx := Build(map[hetgraph.NodeID]vec.Vec32{1: {1, 0}, 2: {0, 1}, 3: {1, 1}}, Config{Refine: true})
	if err := idx.Insert(9, vec.Vec32{1, 0}); err != nil {
		t.Fatal(err)
	}
	res, _ := idx.Search(vec.Vec32{1, 0}, 2, 0)
	found := false
	for _, r := range res {
		if r.ID == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("duplicate-vector insert unreachable: %v", res)
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	embs := clusteredEmbeddings(rng, 8, 10, 6)
	idx := Build(embs, Config{Refine: true, Seed: 2})

	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() || loaded.NavigatingNode() != idx.NavigatingNode() ||
		loaded.NumEdges() != idx.NumEdges() {
		t.Fatal("shape changed after round trip")
	}
	// Identical search results.
	for i := 0; i < 10; i++ {
		q := embs[hetgraph.NodeID(rng.Intn(len(embs)))]
		a, _ := idx.Search(q, 5, 0)
		b, _ := loaded.Search(q, 5, 0)
		if len(a) != len(b) {
			t.Fatal("result sizes differ")
		}
		for j := range a {
			if a[j].ID != b[j].ID {
				t.Fatalf("result %d differs: %v vs %v", j, a[j], b[j])
			}
		}
	}
	// A loaded index accepts inserts.
	if err := loaded.Insert(hetgraph.NodeID(5000), embs[loaded.NavigatingNode()].Clone()); err != nil {
		t.Fatal(err)
	}
}

func TestReadIndexRejectsCorruptData(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestRemoveHidesFromResults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	embs := randomEmbeddings(rng, 80, 8)
	idx := Build(embs, Config{Refine: true, Seed: 1})

	victim := hetgraph.NodeID(7)
	if err := idx.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if err := idx.Remove(victim); err == nil {
		t.Error("double remove accepted")
	}
	if idx.Len() != 79 {
		t.Errorf("Len = %d, want 79", idx.Len())
	}
	if f := idx.DeadFraction(); f <= 0 || f >= 0.05 {
		t.Errorf("DeadFraction = %v", f)
	}
	// Searching with the victim's own embedding must not return it.
	res, _ := idx.Search(embs[victim], 10, 0)
	for _, r := range res {
		if r.ID == victim {
			t.Fatal("tombstoned paper returned")
		}
	}
	if len(res) != 10 {
		t.Errorf("results shrank to %d", len(res))
	}
}

func TestRemovedSlotsStillRoute(t *testing.T) {
	// Tombstone a whole cluster's interior; its neighbours must remain
	// reachable through the dead slots.
	rng := rand.New(rand.NewSource(12))
	embs := clusteredEmbeddings(rng, 6, 12, 8)
	idx := Build(embs, Config{Refine: true, Seed: 2})
	for i := 0; i < 20; i++ {
		if err := idx.Remove(hetgraph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := embs[hetgraph.NodeID(30)]
	res, _ := idx.Search(q, 10, 0)
	if len(res) != 10 {
		t.Fatalf("got %d results after heavy removal", len(res))
	}
	for _, r := range res {
		if r.ID < 20 {
			t.Fatal("tombstoned paper returned")
		}
	}
}

func TestCompactDropsTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	embs := randomEmbeddings(rng, 60, 8)
	idx := Build(embs, Config{Refine: true, Seed: 3})
	for i := 0; i < 15; i++ {
		if err := idx.Remove(hetgraph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	idx.Compact(Config{Refine: true, Seed: 3})
	if idx.Len() != 45 || idx.DeadFraction() != 0 {
		t.Fatalf("after compact: len %d, dead %v", idx.Len(), idx.DeadFraction())
	}
	res, _ := idx.Search(embs[hetgraph.NodeID(30)], 5, 0)
	if len(res) != 5 || res[0].ID != 30 {
		t.Errorf("post-compact search broken: %v", res)
	}
	// Compacted index accepts new inserts.
	if err := idx.Insert(hetgraph.NodeID(500), embs[hetgraph.NodeID(30)].Clone()); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSurvivesSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	embs := randomEmbeddings(rng, 40, 6)
	idx := Build(embs, Config{Refine: true, Seed: 4})
	if err := idx.Remove(hetgraph.NodeID(5)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 39 {
		t.Fatalf("loaded Len = %d, want 39", loaded.Len())
	}
	res, _ := loaded.Search(embs[hetgraph.NodeID(5)], 5, 0)
	for _, r := range res {
		if r.ID == 5 {
			t.Fatal("tombstone lost in serialisation")
		}
	}
}
