// Package train implements the fine-tuning stage of §III-C: the
// margin-based triplet loss of Eq. 3 over ⟨p+, p_s, p-⟩ triples, minimised
// with the Adam optimiser [33] over the encoder's token-embedding
// parameters Θ_B. Gradients are sparse (only rows of tokens appearing in a
// batch are touched), so Adam state is applied lazily per row.
package train

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"expertfind/internal/hetgraph"
	"expertfind/internal/sampling"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// Config holds the training hyper-parameters. Zero values select defaults:
// the paper's β1=0.9, β2=0.999, margin c=1, 4 epochs, batch size 64. The
// learning rate defaults to 0.01 rather than the paper's 2e-5 — the paper's
// value is tuned for a 110M-parameter transformer, while our substitute
// table needs larger steps to move in 4 epochs (see DESIGN.md).
type Config struct {
	LearningRate float64
	Beta1, Beta2 float64
	Epsilon      float64
	Margin       float64 // c in Eq. 3
	Epochs       int
	BatchSize    int
	// Workers bounds data-parallel gradient computation; 0 means
	// GOMAXPROCS.
	Workers int
	// Progress, if non-nil, receives the mean loss after each epoch.
	Progress func(epoch int, meanLoss float64)
}

func (c Config) withDefaults() Config {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Beta1 <= 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 <= 0 {
		c.Beta2 = 0.999
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-8
	}
	if c.Margin <= 0 {
		c.Margin = 1
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Result reports a fine-tuning run.
type Result struct {
	EpochLosses []float64       // mean triplet loss per epoch
	EpochTimes  []time.Duration // wall time per epoch
	Steps       int             // optimiser steps taken
	Triples     int
}

// TokenCache maps each paper to its tokenised label, computed once so
// training and embedding never re-tokenize.
type TokenCache map[hetgraph.NodeID][]textenc.TokenID

// BuildTokenCache tokenises L(p) for every paper of g with enc's
// tokenizer.
func BuildTokenCache(g *hetgraph.Graph, enc *textenc.Encoder) TokenCache {
	papers := g.NodesOfType(hetgraph.Paper)
	cache := make(TokenCache, len(papers))
	tk := enc.Tokenizer()
	for _, p := range papers {
		cache[p] = tk.Tokenize(g.Label(p))
	}
	return cache
}

// FineTune minimises the triplet loss over triples, updating enc's
// embedding table in place. Shuffling uses rng, so a fixed seed reproduces
// the run exactly (worker-parallel gradient sums are merged in
// deterministic chunk order).
func FineTune(enc *textenc.Encoder, cache TokenCache, triples []sampling.Triple,
	cfg Config, rng *rand.Rand) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Triples: len(triples)}
	if len(triples) == 0 {
		return res
	}

	opt := newAdam(enc.Emb, cfg)
	order := make([]int, len(triples))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			grads, loss := batchGradients(enc, cache, triples, batch, cfg)
			epochLoss += loss
			if len(grads) > 0 {
				opt.step(grads)
				res.Steps++
			}
		}
		mean := epochLoss / float64(len(order))
		res.EpochLosses = append(res.EpochLosses, mean)
		res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))
		if s := currentSink(); s != nil {
			s.Observe("expertfind_train_epochs_total", 1)
			s.Observe("expertfind_train_epoch_seconds_total", time.Since(epochStart).Seconds())
			s.Observe("expertfind_train_loss", mean)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, mean)
		}
	}
	if s := currentSink(); s != nil {
		s.Observe("expertfind_train_runs_total", 1)
		s.Observe("expertfind_train_triples_total", float64(len(triples)))
		s.Observe("expertfind_train_steps_total", float64(res.Steps))
	}
	return res
}

// batchGradients computes the summed sparse gradient of the batch and its
// total loss, fanning work across workers.
func batchGradients(enc *textenc.Encoder, cache TokenCache, triples []sampling.Triple,
	batch []int, cfg Config) (map[textenc.TokenID]vec.Vector, float64) {
	workers := cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	type partial struct {
		grads map[textenc.TokenID]vec.Vector
		loss  float64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := partial{grads: map[textenc.TokenID]vec.Vector{}}
			for _, idx := range batch[lo:hi] {
				p.loss += tripleGradient(enc, cache, triples[idx], cfg.Margin, p.grads)
			}
			parts[w] = p
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge in chunk order for determinism.
	total := map[textenc.TokenID]vec.Vector{}
	var loss float64
	for _, p := range parts {
		loss += p.loss
		for id, gp := range p.grads {
			if g, ok := total[id]; ok {
				g.Add(gp)
			} else {
				total[id] = gp
			}
		}
	}
	return total, loss
}

// tripleGradient accumulates ∂L/∂Θ_B for one triple into grads and returns
// the triple's loss L = max(δ(v_s,v+) - δ(v_s,v-) + c, 0).
func tripleGradient(enc *textenc.Encoder, cache TokenCache, t sampling.Triple,
	margin float64, grads map[textenc.TokenID]vec.Vector) float64 {
	sTok, pTok, nTok := cache[t.Seed], cache[t.Pos], cache[t.Neg]
	// The forward pass pools the float32 table in float64
	// (EncodeTokensRaw64): the finite-difference gradient check needs loss
	// resolution float32 partial sums cannot provide.
	us := enc.EncodeTokensRaw64(sTok)
	up := enc.EncodeTokensRaw64(pTok)
	un := enc.EncodeTokensRaw64(nTok)
	vs, nvs := normalized(enc, us)
	vp, nvp := normalized(enc, up)
	vn, nvn := normalized(enc, un)

	dp := vs.Clone().Sub(vp) // v_s - v_+
	dn := vs.Clone().Sub(vn) // v_s - v_-
	np := dp.Norm()
	nn := dn.Norm()
	loss := np - nn + margin
	if loss <= 0 {
		return 0
	}

	// ∂δ(v_s,v_+)/∂v_s = (v_s - v_+)/δ; guard zero distances.
	gs := vec.New(enc.Dim)
	gp := vec.New(enc.Dim)
	gn := vec.New(enc.Dim)
	if np > 0 {
		gs.Axpy(1/np, dp)
		gp.Axpy(-1/np, dp)
	}
	if nn > 0 {
		gs.Axpy(-1/nn, dn)
		gn.Axpy(1/nn, dn)
	}

	scatter(enc, sTok, throughNorm(enc, gs, vs, nvs), grads)
	scatter(enc, pTok, throughNorm(enc, gp, vp, nvp), grads)
	scatter(enc, nTok, throughNorm(enc, gn, vn, nvn), grads)
	return loss
}

// normalized returns the (possibly) normalised document vector and the raw
// pooled norm, matching Encoder.EncodeTokens.
func normalized(enc *textenc.Encoder, u vec.Vector) (vec.Vector, float64) {
	n := u.Norm()
	if !enc.Normalize || n == 0 {
		return u, n
	}
	return u.Clone().Scale(1 / n), n
}

// throughNorm backpropagates a gradient on the normalised vector v = u/‖u‖
// to the raw pooled vector u: ∂L/∂u = (g - (g·v)v)/‖u‖.
func throughNorm(enc *textenc.Encoder, g, v vec.Vector, rawNorm float64) vec.Vector {
	if !enc.Normalize || rawNorm == 0 {
		return g
	}
	out := g.Clone()
	out.Axpy(-g.Dot(v), v)
	return out.Scale(1 / rawNorm)
}

// scatter routes a document-level gradient into token rows. Under mean
// pooling every token receives its pooling weight's share
// (∂v_doc/∂row_t = w_t · I); under max pooling each dimension's gradient
// goes solely to the token attaining the maximum there (the standard
// max-pool sub-gradient).
func scatter(enc *textenc.Encoder, ids []textenc.TokenID, gDoc vec.Vector,
	grads map[textenc.TokenID]vec.Vector) {
	if len(ids) == 0 {
		return
	}
	row := func(id textenc.TokenID) vec.Vector {
		g, ok := grads[id]
		if !ok {
			g = vec.New(gDoc.Dim())
			grads[id] = g
		}
		return g
	}
	if enc.Pooling == textenc.MaxPooling {
		arg := enc.PoolArgmax(ids)
		for j, pos := range arg {
			row(ids[pos])[j] += gDoc[j]
		}
		return
	}
	ws := enc.PoolWeights(ids)
	for i, id := range ids {
		row(id).Axpy(ws[i], gDoc)
	}
}

// adam holds the optimiser state for the embedding table: first and second
// moment estimates per parameter, updated lazily per touched row with a
// per-row timestep (standard "lazy Adam" for sparse gradients). The
// weights live in float32; moments and the update arithmetic stay in
// float64, with one rounding when the new weight is stored — mixed
// precision in the usual sense, so tiny gradients still move the moments.
type adam struct {
	cfg   Config
	table *vec.Matrix32
	m, v  *vec.Matrix
	tRow  []int // per-row step count for bias correction
}

func newAdam(table *vec.Matrix32, cfg Config) *adam {
	return &adam{
		cfg:   cfg,
		table: table,
		m:     vec.NewMatrix(table.Rows, table.Cols),
		v:     vec.NewMatrix(table.Rows, table.Cols),
		tRow:  make([]int, table.Rows),
	}
}

// step applies one Adam update for every row with a non-zero gradient.
func (a *adam) step(grads map[textenc.TokenID]vec.Vector) {
	c := a.cfg
	for id, g := range grads {
		r := int(id)
		a.tRow[r]++
		t := float64(a.tRow[r])
		mRow, vRow, w := a.m.Row(r), a.v.Row(r), a.table.Row(r)
		bc1 := 1 - math.Pow(c.Beta1, t)
		bc2 := 1 - math.Pow(c.Beta2, t)
		for j, gj := range g {
			mRow[j] = c.Beta1*mRow[j] + (1-c.Beta1)*gj
			vRow[j] = c.Beta2*vRow[j] + (1-c.Beta2)*gj*gj
			mHat := mRow[j] / bc1
			vHat := vRow[j] / bc2
			w[j] = float32(float64(w[j]) - c.LearningRate*mHat/(math.Sqrt(vHat)+c.Epsilon))
		}
	}
}

// EmbedAll computes the fine-tuned representation of every paper in cache,
// in parallel. The result E is the embedding set used by the PG-Index.
func EmbedAll(enc *textenc.Encoder, cache TokenCache) map[hetgraph.NodeID]vec.Vec32 {
	ids := make([]hetgraph.NodeID, 0, len(cache))
	for id := range cache {
		ids = append(ids, id)
	}
	out := make(map[hetgraph.NodeID]vec.Vec32, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := make(map[hetgraph.NodeID]vec.Vec32, hi-lo)
			for _, id := range ids[lo:hi] {
				local[id] = enc.EncodeTokens(cache[id])
			}
			mu.Lock()
			for k, v := range local {
				out[k] = v
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// String renders the result compactly for logs.
func (r *Result) String() string {
	return fmt.Sprintf("train: %d triples, %d steps, losses %v", r.Triples, r.Steps, r.EpochLosses)
}
