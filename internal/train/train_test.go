package train

import (
	"math"
	"math/rand"
	"testing"

	"expertfind/internal/hetgraph"
	"expertfind/internal/hetgraph/testgraph"
	"expertfind/internal/sampling"
	"expertfind/internal/textenc"
	"expertfind/internal/vec"
)

// fixture builds a tiny graph, encoder and token cache.
func fixture(t *testing.T) (*hetgraph.Graph, *textenc.Encoder, TokenCache) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := testgraph.Random(rng, 30, 12, 2, 3)
	var corpus []string
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		corpus = append(corpus, g.Label(p))
	}
	vocab := textenc.BuildVocab(corpus, textenc.VocabConfig{MinWordFreq: 1})
	enc := textenc.NewEncoder(vocab, 12, 7)
	return g, enc, BuildTokenCache(g, enc)
}

func someTriples(g *hetgraph.Graph, n int) []sampling.Triple {
	papers := g.NodesOfType(hetgraph.Paper)
	rng := rand.New(rand.NewSource(9))
	out := make([]sampling.Triple, n)
	for i := range out {
		out[i] = sampling.Triple{
			Seed: papers[rng.Intn(len(papers))],
			Pos:  papers[rng.Intn(len(papers))],
			Neg:  papers[rng.Intn(len(papers))],
		}
	}
	return out
}

func TestBuildTokenCacheCoversAllPapers(t *testing.T) {
	g, _, cache := fixture(t)
	if len(cache) != g.NumNodesOfType(hetgraph.Paper) {
		t.Fatalf("cache has %d entries, want %d", len(cache), g.NumNodesOfType(hetgraph.Paper))
	}
	for p, ids := range cache {
		if g.Type(p) != hetgraph.Paper {
			t.Fatal("non-paper in cache")
		}
		if len(ids) == 0 {
			t.Fatalf("paper %d tokenized to nothing", p)
		}
	}
}

func TestFineTuneEmptyTriples(t *testing.T) {
	_, enc, cache := fixture(t)
	res := FineTune(enc, cache, nil, Config{}, rand.New(rand.NewSource(1)))
	if res.Steps != 0 || len(res.EpochLosses) != 0 {
		t.Error("training on no triples did work")
	}
}

func TestFineTuneLossDecreases(t *testing.T) {
	g, enc, cache := fixture(t)
	triples := someTriples(g, 120)
	res := FineTune(enc, cache, triples, Config{Epochs: 6}, rand.New(rand.NewSource(2)))
	if len(res.EpochLosses) != 6 {
		t.Fatalf("epochs = %d", len(res.EpochLosses))
	}
	first, last := res.EpochLosses[0], res.EpochLosses[len(res.EpochLosses)-1]
	if !(last < first) {
		t.Errorf("loss did not decrease: %v", res.EpochLosses)
	}
	if res.Steps == 0 || res.Triples != 120 {
		t.Errorf("result bookkeeping wrong: %+v", res)
	}
}

func TestFineTuneDeterministic(t *testing.T) {
	g, enc, cache := fixture(t)
	triples := someTriples(g, 60)
	e1 := enc.Clone()
	e2 := enc.Clone()
	FineTune(e1, cache, triples, Config{Epochs: 2, Workers: 4}, rand.New(rand.NewSource(3)))
	FineTune(e2, cache, triples, Config{Epochs: 2, Workers: 4}, rand.New(rand.NewSource(3)))
	for i := range e1.Emb.Data {
		if e1.Emb.Data[i] != e2.Emb.Data[i] {
			t.Fatal("training not deterministic across runs")
		}
	}
}

func TestFineTunePullsPositivesCloser(t *testing.T) {
	g, enc, cache := fixture(t)
	papers := g.NodesOfType(hetgraph.Paper)
	s, pos, neg := papers[0], papers[1], papers[2]
	triples := make([]sampling.Triple, 50)
	for i := range triples {
		triples[i] = sampling.Triple{Seed: s, Pos: pos, Neg: neg}
	}
	before := enc.EncodeTokens(cache[s]).L2(enc.EncodeTokens(cache[pos])) -
		enc.EncodeTokens(cache[s]).L2(enc.EncodeTokens(cache[neg]))
	FineTune(enc, cache, triples, Config{Epochs: 4}, rand.New(rand.NewSource(4)))
	after := enc.EncodeTokens(cache[s]).L2(enc.EncodeTokens(cache[pos])) -
		enc.EncodeTokens(cache[s]).L2(enc.EncodeTokens(cache[neg]))
	if !(after < before) {
		t.Errorf("margin did not improve: before %v, after %v", before, after)
	}
}

// TestTripleGradientNumerical verifies the analytic gradient (including
// the chain rule through pooling and L2 normalisation) against central
// finite differences on every touched parameter of a small table.
func TestTripleGradientNumerical(t *testing.T) {
	g, enc, cache := fixture(t)
	papers := g.NodesOfType(hetgraph.Paper)
	tr := sampling.Triple{Seed: papers[0], Pos: papers[3], Neg: papers[5]}
	const margin = 1.0

	// The loss is recomputed through the trainer's float64 forward path
	// (EncodeTokensRaw64): finite differences need more resolution than the
	// float32 serving encode provides.
	loss := func() float64 { return tripleLoss64(enc, cache, tr, margin) }
	if loss() == 0 {
		t.Skip("fixture triple has zero loss; gradient everywhere zero")
	}

	grads := map[textenc.TokenID]vec.Vector{}
	got := tripleGradient(enc, cache, tr, margin, grads)
	if math.Abs(got-loss()) > 1e-9 {
		t.Fatalf("returned loss %v != recomputed %v", got, loss())
	}

	const h = 1e-6
	checked := 0
	for id, gv := range grads {
		row := enc.Emb.Row(int(id))
		for j := 0; j < len(row); j += 5 { // sample dimensions
			orig := row[j]
			// The table is float32, so w±h rounds; divide by the step the
			// weights actually took, not the nominal 2h.
			row[j] = float32(float64(orig) + h)
			hp := float64(row[j]) - float64(orig)
			lp := loss()
			row[j] = float32(float64(orig) - h)
			hm := float64(orig) - float64(row[j])
			lm := loss()
			row[j] = orig
			num := (lp - lm) / (hp + hm)
			if math.Abs(num-gv[j]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("token %d dim %d: analytic %v, numeric %v", id, j, gv[j], num)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

// tripleLoss64 recomputes the triplet loss exactly as tripleGradient's
// forward pass does: float64 pooling over the float32 table, float64
// normalisation.
func tripleLoss64(enc *textenc.Encoder, cache TokenCache, tr sampling.Triple, margin float64) float64 {
	norm := func(ids []textenc.TokenID) vec.Vector {
		u := enc.EncodeTokensRaw64(ids)
		if n := u.Norm(); enc.Normalize && n != 0 {
			u.Scale(1 / n)
		}
		return u
	}
	vs, vp, vn := norm(cache[tr.Seed]), norm(cache[tr.Pos]), norm(cache[tr.Neg])
	l := vs.L2(vp) - vs.L2(vn) + margin
	if l < 0 {
		return 0
	}
	return l
}

func TestTripleGradientZeroWhenSatisfied(t *testing.T) {
	g, enc, cache := fixture(t)
	papers := g.NodesOfType(hetgraph.Paper)
	// With margin 0 and pos == seed, the loss is -d(s,neg) <= 0.
	tr := sampling.Triple{Seed: papers[0], Pos: papers[0], Neg: papers[1]}
	grads := map[textenc.TokenID]vec.Vector{}
	if l := tripleGradient(enc, cache, tr, 0, grads); l != 0 || len(grads) != 0 {
		t.Errorf("satisfied triple produced loss %v and %d gradients", l, len(grads))
	}
}

func TestEmbedAllMatchesSequential(t *testing.T) {
	g, enc, cache := fixture(t)
	embs := EmbedAll(enc, cache)
	if len(embs) != len(cache) {
		t.Fatalf("embedded %d papers, want %d", len(embs), len(cache))
	}
	for _, p := range g.NodesOfType(hetgraph.Paper) {
		want := enc.EncodeTokens(cache[p])
		got := embs[p]
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("parallel embedding of %d differs from sequential", p)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Beta1 != 0.9 || c.Beta2 != 0.999 || c.Margin != 1 || c.Epochs != 4 || c.BatchSize != 64 {
		t.Errorf("paper defaults wrong: %+v", c)
	}
	if c.LearningRate <= 0 || c.Workers <= 0 || c.Epsilon <= 0 {
		t.Errorf("unset defaults: %+v", c)
	}
}

func TestAdamStepMovesAgainstGradient(t *testing.T) {
	table := vec.NewMatrix32(2, 3)
	opt := newAdam(table, Config{}.withDefaults())
	g := map[textenc.TokenID]vec.Vector{0: {1, -1, 0}}
	opt.step(g)
	row := table.Row(0)
	if !(row[0] < 0 && row[1] > 0 && row[2] == 0) {
		t.Errorf("Adam step direction wrong: %v", row)
	}
	if table.Row(1)[0] != 0 {
		t.Error("untouched row modified")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Triples: 3, Steps: 2, EpochLosses: []float64{0.5}}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// TestTripleGradientNumericalMaxPooling repeats the finite-difference
// check under max pooling, whose sub-gradient routes each dimension to a
// single token.
func TestTripleGradientNumericalMaxPooling(t *testing.T) {
	g, enc, cache := fixture(t)
	enc.Pooling = textenc.MaxPooling
	papers := g.NodesOfType(hetgraph.Paper)
	tr := sampling.Triple{Seed: papers[0], Pos: papers[3], Neg: papers[5]}
	const margin = 1.0

	loss := func() float64 { return tripleLoss64(enc, cache, tr, margin) }
	if loss() == 0 {
		t.Skip("fixture triple has zero loss under max pooling")
	}
	grads := map[textenc.TokenID]vec.Vector{}
	tripleGradient(enc, cache, tr, margin, grads)

	const h = 1e-6
	checked := 0
	for id, gv := range grads {
		row := enc.Emb.Row(int(id))
		for j := 0; j < len(row); j += 4 {
			if gv[j] == 0 {
				continue // not the argmax of dimension j: sub-gradient zero
			}
			orig := row[j]
			row[j] = float32(float64(orig) + h)
			hp := float64(row[j]) - float64(orig)
			lp := loss()
			row[j] = float32(float64(orig) - h)
			hm := float64(orig) - float64(row[j])
			lm := loss()
			row[j] = orig
			num := (lp - lm) / (hp + hm)
			if diff := num - gv[j]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("token %d dim %d: analytic %v, numeric %v", id, j, gv[j], num)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Skipf("only %d parameters checked (sparse argmax overlap)", checked)
	}
}
