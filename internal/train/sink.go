package train

import "sync/atomic"

// Sink receives named measurements from FineTune, letting a service
// watch long offline runs progress epoch by epoch (obs.Registry
// satisfies the interface).
type Sink interface {
	Observe(name string, v float64)
}

type sinkBox struct{ s Sink }

var sinkHolder atomic.Value

// SetSink installs the package-wide measurement sink; nil disables
// recording.
func SetSink(s Sink) { sinkHolder.Store(sinkBox{s}) }

func currentSink() Sink {
	if b, ok := sinkHolder.Load().(sinkBox); ok {
		return b.s
	}
	return nil
}
