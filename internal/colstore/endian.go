package colstore

import "unsafe"

// hostLittleEndian reports whether this process runs on a little-endian
// CPU. The on-disk format is little-endian; matching hosts reinterpret
// payload bytes in place, others take the portable per-element decode.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// asBytes reinterprets a typed slice as its underlying byte image.
// elemSize must be unsafe.Sizeof the element type. The returned slice
// aliases v and has cap == len.
func asBytes[T any](v []T, elemSize int) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*elemSize)
}

// viewAs reinterprets a byte slice as a typed slice of count elements.
// b must be at least count*sizeof(T) long and aligned for T (segment
// payloads are page-aligned in the mapping, and heap buffers come from
// typed allocations, so both sources satisfy this). The returned slice
// aliases b and has cap == len, so an append by the consumer
// reallocates to the heap instead of scribbling on a read-only mapping.
func viewAs[T any](b []byte, count int) []T {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), count)
}
