//go:build !(linux || darwin)

package colstore

import "os"

// mmapSupported reports whether this build can map snapshot files.
const mmapSupported = false

func mapFile(f *os.File, size int64) ([]byte, error) { return nil, ErrNoMmap }

func unmapFile(b []byte) error { return nil }
