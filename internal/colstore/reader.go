package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"expertfind/internal/durable"
)

// verifyChunk bounds the buffer used for CRC verification so validating
// a multi-gigabyte section costs one reusable megabyte of heap, not a
// resident copy of the file.
const verifyChunk = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section is an opened columnar section: a validated directory plus
// either a read-only mapping of the whole file (zero-copy typed views)
// or a handle to read segments onto the heap.
//
// A mapped Section owns its mapping; Close releases it, after which
// every view previously handed out is invalid. Callers that install
// views into long-lived structures must keep the Section alive for the
// lifetime of those structures. A heap Section reads through the
// io.ReaderAt it was opened with, so that source must stay open until
// the last accessor call (typically the duration of a snapshot load).
type Section struct {
	Version uint16
	// Mapped reports whether typed accessors return zero-copy views
	// into an mmap'd file (true) or freshly allocated heap slices.
	Mapped bool

	name    string
	ra      io.ReaderAt
	dir     []Segment
	byName  map[string]int
	mapping []byte // whole-file mmap; nil in heap mode
	end     int64  // absolute file offset one past the section
}

func corrupt(name string, off int64, detail string, err error) error {
	return &durable.CorruptError{Path: name, Offset: off, Detail: detail, Err: err}
}

// parseDirectory reads and fully validates a section directory at
// offset off of a size-byte source. Every declared segment must land
// inside the file, be aligned, not overlap another segment, and agree
// with its kind's element width; the directory's own CRC must match,
// and every alignment-padding byte must be present and zero (the
// section is canonical — see the padding check below). Payload CRCs
// are NOT checked here — see verifySegments.
func parseDirectory(ra io.ReaderAt, name string, size, off int64) (version uint16, dir []Segment, end int64, err error) {
	if off < 0 || off > size {
		return 0, nil, 0, corrupt(name, off, "section offset", durable.ErrTruncated)
	}
	var hdr [headerSize]byte
	if size-off < headerSize {
		return 0, nil, 0, corrupt(name, size, "section header", durable.ErrTruncated)
	}
	if _, err := ra.ReadAt(hdr[:], off); err != nil {
		return 0, nil, 0, fmt.Errorf("colstore: %s: read section header: %w", name, err)
	}
	if [8]byte(hdr[0:8]) != SectionMagic {
		return 0, nil, 0, corrupt(name, off, "section magic", durable.ErrBadMagic)
	}
	version = binary.LittleEndian.Uint16(hdr[8:10])
	if version == 0 || version > SectionVersion {
		return 0, nil, 0, &durable.VersionError{Path: name, Got: version, Max: SectionVersion}
	}
	count := binary.LittleEndian.Uint32(hdr[12:16])
	if count == 0 || count > MaxSegments {
		return 0, nil, 0, corrupt(name, off+12, "segment count", durable.ErrChecksum)
	}
	alignment := binary.LittleEndian.Uint32(hdr[16:20])
	if alignment == 0 || alignment&(alignment-1) != 0 || alignment > 1<<20 {
		return 0, nil, 0, corrupt(name, off+16, "section alignment", durable.ErrChecksum)
	}

	dirLen := int64(headerSize) + int64(count)*entrySize + crcSize
	if size-off < dirLen {
		return 0, nil, 0, corrupt(name, size, "segment directory", durable.ErrTruncated)
	}
	raw := make([]byte, dirLen)
	if _, err := ra.ReadAt(raw, off); err != nil {
		return 0, nil, 0, fmt.Errorf("colstore: %s: read segment directory: %w", name, err)
	}
	crcAt := dirLen - crcSize
	want := binary.LittleEndian.Uint32(raw[crcAt:])
	if got := crc32.Checksum(raw[:crcAt], castagnoli); got != want {
		return 0, nil, 0, corrupt(name, off, "segment directory", durable.ErrChecksum)
	}

	dir = make([]Segment, count)
	end = off + dirLen
	for i := range dir {
		e := raw[headerSize+i*entrySize:]
		nameLen := 0
		for nameLen < MaxNameLen && e[nameLen] != 0 {
			nameLen++
		}
		segName := string(e[:nameLen])
		entryOff := off + int64(headerSize) + int64(i)*entrySize
		if !validName(segName) {
			return 0, nil, 0, corrupt(name, entryOff, "segment name", durable.ErrChecksum)
		}
		kind := Kind(binary.LittleEndian.Uint32(e[16:20]))
		es := kind.ElemSize()
		if es == 0 || binary.LittleEndian.Uint32(e[20:24]) != uint32(es) {
			return 0, nil, 0, corrupt(name, entryOff+16,
				fmt.Sprintf("segment %q element kind", segName), durable.ErrChecksum)
		}
		cnt := binary.LittleEndian.Uint64(e[24:32])
		segOff := binary.LittleEndian.Uint64(e[32:40])
		segLen := binary.LittleEndian.Uint64(e[40:48])
		if cnt > math.MaxUint64/uint64(es) || segLen != cnt*uint64(es) {
			return 0, nil, 0, corrupt(name, entryOff+24,
				fmt.Sprintf("segment %q length", segName), durable.ErrChecksum)
		}
		if segOff%uint64(alignment) != 0 || segOff < uint64(off)+uint64(dirLen-crcSize) {
			return 0, nil, 0, corrupt(name, entryOff+32,
				fmt.Sprintf("segment %q offset", segName), durable.ErrChecksum)
		}
		if segOff > uint64(size) || segLen > uint64(size)-segOff {
			return 0, nil, 0, corrupt(name, entryOff+32,
				fmt.Sprintf("segment %q extent", segName), durable.ErrTruncated)
		}
		dir[i] = Segment{
			Name:   segName,
			Kind:   kind,
			Count:  cnt,
			Offset: segOff,
			Length: segLen,
			CRC:    binary.LittleEndian.Uint32(e[48:52]),
		}
		if e := int64(segOff) + int64(segLen); e > end {
			end = e
		}
	}

	// No two segments may overlap, and names must be unique: either is a
	// forged or damaged directory, not a layout this package writes.
	byOff := make([]*Segment, count)
	seen := make(map[string]bool, count)
	for i := range dir {
		if seen[dir[i].Name] {
			return 0, nil, 0, corrupt(name, off+headerSize,
				fmt.Sprintf("duplicate segment %q", dir[i].Name), durable.ErrChecksum)
		}
		seen[dir[i].Name] = true
		byOff[i] = &dir[i]
	}
	sort.Slice(byOff, func(i, j int) bool { return byOff[i].Offset < byOff[j].Offset })
	for i := 1; i < len(byOff); i++ {
		if byOff[i].Offset < byOff[i-1].Offset+byOff[i-1].Length {
			return 0, nil, 0, corrupt(name, int64(byOff[i].Offset),
				fmt.Sprintf("segments %q and %q overlap", byOff[i-1].Name, byOff[i].Name),
				durable.ErrChecksum)
		}
	}

	// Canonical padding: the writer zero-fills every alignment gap —
	// between the directory and the first payload, between payloads,
	// and after the last payload up to the aligned section end. Demanding
	// those bytes be present and zero closes the coverage gap the CRCs
	// leave: a bit flip or truncation anywhere in the section span is
	// detected, not just one inside a payload.
	padEnd := align(end, int64(alignment))
	if padEnd > size {
		return 0, nil, 0, corrupt(name, size, "section padding", durable.ErrTruncated)
	}
	pos := off + dirLen
	for _, sg := range byOff {
		if sg.Length == 0 {
			continue
		}
		if int64(sg.Offset) > pos {
			if err := checkZeroRange(ra, name, pos, int64(sg.Offset)); err != nil {
				return 0, nil, 0, err
			}
		}
		if e := int64(sg.Offset) + int64(sg.Length); e > pos {
			pos = e
		}
	}
	if err := checkZeroRange(ra, name, pos, padEnd); err != nil {
		return 0, nil, 0, err
	}
	return version, dir, end, nil
}

// checkZeroRange reads [lo, hi) in bounded chunks and rejects any
// non-zero byte — alignment padding has exactly one valid value.
func checkZeroRange(ra io.ReaderAt, name string, lo, hi int64) error {
	if lo >= hi {
		return nil
	}
	n := hi - lo
	if n > verifyChunk {
		n = verifyChunk
	}
	buf := make([]byte, n)
	for lo < hi {
		c := hi - lo
		if c > verifyChunk {
			c = verifyChunk
		}
		if _, err := ra.ReadAt(buf[:c], lo); err != nil {
			return corrupt(name, lo, "section padding", durable.ErrTruncated)
		}
		for i := int64(0); i < c; i++ {
			if buf[i] != 0 {
				return corrupt(name, lo+i, "section padding", durable.ErrChecksum)
			}
		}
		lo += c
	}
	return nil
}

// verifySegments streams every payload through CRC-32C in bounded
// chunks via ReadAt — deliberately not through any mapping, so
// verifying a larger-than-RAM file never faults it resident.
func verifySegments(ra io.ReaderAt, name string, dir []Segment) error {
	buf := make([]byte, verifyChunk)
	for _, sg := range dir {
		var crc uint32
		off, left := int64(sg.Offset), int64(sg.Length)
		for left > 0 {
			c := left
			if c > verifyChunk {
				c = verifyChunk
			}
			if _, err := ra.ReadAt(buf[:c], off); err != nil {
				return corrupt(name, off, fmt.Sprintf("segment %q payload", sg.Name), durable.ErrTruncated)
			}
			crc = crc32.Update(crc, castagnoli, buf[:c])
			off += c
			left -= c
		}
		if crc != sg.CRC {
			return corrupt(name, int64(sg.Offset),
				fmt.Sprintf("segment %q payload", sg.Name), durable.ErrChecksum)
		}
	}
	return nil
}

// VerifySection parses and CRC-verifies a section without materialising
// any segment — replication bootstrap uses it to validate a fetched
// snapshot before installing the file. It returns the absolute offset
// one past the last segment payload.
func VerifySection(ra io.ReaderAt, name string, size, off int64) (end int64, err error) {
	_, dir, end, err := parseDirectory(ra, name, size, off)
	if err != nil {
		return 0, err
	}
	if err := verifySegments(ra, name, dir); err != nil {
		return 0, err
	}
	return end, nil
}

// Open opens, validates and (per mode) maps the section at offset off
// of file f. ModeAuto and ModeOn map the whole file read-only and hand
// out zero-copy views; ModeOff — and ModeAuto on platforms without mmap
// — reads segments onto the heap through f instead, in which case f
// must remain open until the caller is done with accessors.
//
// Every segment CRC is verified (with a bounded buffer, never through
// the mapping) before Open returns, so a torn or bit-flipped file is
// rejected before any view escapes.
func Open(f *os.File, off int64, mode Mode) (*Section, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colstore: stat %s: %w", f.Name(), err)
	}
	s, err := OpenReaderAt(f, f.Name(), fi.Size(), off)
	if err != nil {
		return nil, err
	}
	if mode == ModeOff || (mode == ModeAuto && !mmapSupported) {
		return s, nil
	}
	m, err := mapFile(f, fi.Size())
	if err != nil {
		if mode == ModeAuto {
			return s, nil // fall back to heap reads
		}
		return nil, err
	}
	s.mapping = m
	s.Mapped = true
	return s, nil
}

// OpenReaderAt opens a heap-mode section from any random-access source
// (a bytes.Reader over streamed snapshot bytes, an open file, ...).
// Typed accessors allocate and copy; the source must stay readable
// until the last accessor call.
func OpenReaderAt(ra io.ReaderAt, name string, size, off int64) (*Section, error) {
	version, dir, end, err := parseDirectory(ra, name, size, off)
	if err != nil {
		return nil, err
	}
	if err := verifySegments(ra, name, dir); err != nil {
		return nil, err
	}
	byName := make(map[string]int, len(dir))
	for i := range dir {
		byName[dir[i].Name] = i
	}
	return &Section{
		Version: version,
		name:    name,
		ra:      ra,
		dir:     dir,
		byName:  byName,
		end:     end,
	}, nil
}

// Close releases the mapping, if any. Views handed out by a mapped
// section must not be touched afterwards.
func (s *Section) Close() error {
	m := s.mapping
	s.mapping = nil
	s.Mapped = false
	return unmapFile(m)
}

// Materialized returns a heap-mode alias of this section: same
// validated directory and source, but typed accessors allocate and read
// through the underlying file instead of returning views of the
// mapping. Use it for segments the caller immediately walks in full
// (row ids, CSR offsets, tombstones) — a zero-copy view of those would
// fault every page resident during load anyway, defeating the point of
// the mapping, and on top of that pins the Section's lifetime for data
// that is about to be decoded and discarded. The alias shares the
// original's file handle, so it is only usable while that stays open;
// closing the alias never releases the original's mapping.
func (s *Section) Materialized() *Section {
	h := *s
	h.mapping = nil
	h.Mapped = false
	return &h
}

// End returns the absolute file offset one past the last segment
// payload (before any trailing alignment padding).
func (s *Section) End() int64 { return s.end }

// Segments returns a copy of the directory, in written order.
func (s *Section) Segments() []Segment {
	out := make([]Segment, len(s.dir))
	copy(out, s.dir)
	return out
}

// Has reports whether a segment with the given name exists.
func (s *Section) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// lookup finds a segment by name and checks its kind.
func (s *Section) lookup(name string, kind Kind) (Segment, error) {
	i, ok := s.byName[name]
	if !ok {
		return Segment{}, fmt.Errorf("colstore: %s: no segment %q", s.name, name)
	}
	sg := s.dir[i]
	if sg.Kind != kind {
		return Segment{}, fmt.Errorf("colstore: %s: segment %q is %v, want %v",
			s.name, name, sg.Kind, kind)
	}
	return sg, nil
}

// view returns the mapped payload bytes of sg with cap == len, so any
// append by a consumer escapes to the heap instead of writing into the
// read-only mapping.
func (s *Section) view(sg Segment) []byte {
	lo, hi := sg.Offset, sg.Offset+sg.Length
	return s.mapping[lo:hi:hi]
}

// readInto fills dst (a typed allocation viewed as bytes) with the
// payload of sg.
func (s *Section) readInto(dst []byte, sg Segment) error {
	if len(dst) == 0 {
		return nil
	}
	if _, err := s.ra.ReadAt(dst, int64(sg.Offset)); err != nil {
		return fmt.Errorf("colstore: %s: read segment %q: %w", s.name, sg.Name, err)
	}
	return nil
}

// typed materialises or views a segment as []T. elemSize must equal
// sizeof(T). Mapped little-endian sections return a zero-copy view;
// heap mode allocates []T (guaranteeing alignment) and reads the bytes
// straight into it; big-endian hosts decode per element via dec.
func typed[T any](s *Section, name string, kind Kind, dec func([]byte) T) ([]T, error) {
	sg, err := s.lookup(name, kind)
	if err != nil {
		return nil, err
	}
	n := int(sg.Count)
	if uint64(n) != sg.Count {
		return nil, fmt.Errorf("colstore: %s: segment %q: count %d overflows int", s.name, name, sg.Count)
	}
	es := kind.ElemSize()
	if s.Mapped && hostLittleEndian {
		return viewAs[T](s.view(sg), n), nil
	}
	out := make([]T, n)
	if hostLittleEndian {
		return out, s.readInto(asBytes(out, es), sg)
	}
	// Portable big-endian fallback: chunked byte reads, per-element decode.
	buf := make([]byte, verifyChunk-(verifyChunk%es))
	off, done := int64(sg.Offset), 0
	for done < n {
		c := (n - done) * es
		if c > len(buf) {
			c = len(buf)
		}
		if _, err := s.ra.ReadAt(buf[:c], off); err != nil {
			return nil, fmt.Errorf("colstore: %s: read segment %q: %w", s.name, name, err)
		}
		for i := 0; i < c; i += es {
			out[done] = dec(buf[i : i+es])
			done++
		}
		off += int64(c)
	}
	return out, nil
}

// Float32s returns the named f32 segment.
func (s *Section) Float32s(name string) ([]float32, error) {
	return typed[float32](s, name, KindF32, func(b []byte) float32 {
		return math.Float32frombits(binary.LittleEndian.Uint32(b))
	})
}

// Int32s returns the named i32 segment.
func (s *Section) Int32s(name string) ([]int32, error) {
	return typed[int32](s, name, KindI32, func(b []byte) int32 {
		return int32(binary.LittleEndian.Uint32(b))
	})
}

// Uint32s returns the named u32 segment.
func (s *Section) Uint32s(name string) ([]uint32, error) {
	return typed[uint32](s, name, KindU32, binary.LittleEndian.Uint32)
}

// Uint64s returns the named u64 segment.
func (s *Section) Uint64s(name string) ([]uint64, error) {
	return typed[uint64](s, name, KindU64, binary.LittleEndian.Uint64)
}

// Int8s returns the named i8 segment.
func (s *Section) Int8s(name string) ([]int8, error) {
	return typed[int8](s, name, KindI8, func(b []byte) int8 { return int8(b[0]) })
}

// Bytes returns the named u8 segment.
func (s *Section) Bytes(name string) ([]byte, error) {
	return typed[byte](s, name, KindU8, func(b []byte) byte { return b[0] })
}
