package colstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"expertfind/internal/durable"
)

// SegmentData is one column queued for writing: a name, an element
// kind, and the raw little-endian payload bytes. Build values with the
// typed constructors (F32Seg, I32Seg, ...) rather than by hand — they
// guarantee Count, Kind and the byte image agree.
type SegmentData struct {
	Name  string
	Kind  Kind
	Count uint64
	raw   []byte // little-endian payload image
}

// F32Seg queues a float32 column. On little-endian hosts the payload is
// a zero-copy view of v (v must not be mutated until WriteSection
// returns); elsewhere it is encoded portably.
func F32Seg(name string, v []float32) SegmentData {
	var raw []byte
	if hostLittleEndian {
		raw = asBytes(v, 4)
	} else {
		raw = make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(x))
		}
	}
	return SegmentData{Name: name, Kind: KindF32, Count: uint64(len(v)), raw: raw}
}

// I32Seg queues an int32 column.
func I32Seg(name string, v []int32) SegmentData {
	var raw []byte
	if hostLittleEndian {
		raw = asBytes(v, 4)
	} else {
		raw = make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], uint32(x))
		}
	}
	return SegmentData{Name: name, Kind: KindI32, Count: uint64(len(v)), raw: raw}
}

// U32Seg queues a uint32 column.
func U32Seg(name string, v []uint32) SegmentData {
	var raw []byte
	if hostLittleEndian {
		raw = asBytes(v, 4)
	} else {
		raw = make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], x)
		}
	}
	return SegmentData{Name: name, Kind: KindU32, Count: uint64(len(v)), raw: raw}
}

// U64Seg queues a uint64 column.
func U64Seg(name string, v []uint64) SegmentData {
	var raw []byte
	if hostLittleEndian {
		raw = asBytes(v, 8)
	} else {
		raw = make([]byte, 8*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint64(raw[8*i:], x)
		}
	}
	return SegmentData{Name: name, Kind: KindU64, Count: uint64(len(v)), raw: raw}
}

// I8Seg queues an int8 column (zero-copy view of v on every host).
func I8Seg(name string, v []int8) SegmentData {
	return SegmentData{Name: name, Kind: KindI8, Count: uint64(len(v)), raw: asBytes(v, 1)}
}

// U8Seg queues a raw byte column.
func U8Seg(name string, v []byte) SegmentData {
	return SegmentData{Name: name, Kind: KindU8, Count: uint64(len(v)), raw: v}
}

// SectionSize reports the exact number of bytes WriteSection will emit
// for segs when the section starts at absolute file offset base.
func SectionSize(base int64, segs []SegmentData) (int64, error) {
	end, _, err := layout(base, segs)
	if err != nil {
		return 0, err
	}
	return end - base, nil
}

// layout assigns absolute, page-aligned payload offsets and returns the
// section end offset plus the finished directory.
func layout(base int64, segs []SegmentData) (end int64, dir []Segment, err error) {
	if base < 0 {
		return 0, nil, fmt.Errorf("colstore: negative section base %d", base)
	}
	if len(segs) == 0 || len(segs) > MaxSegments {
		return 0, nil, fmt.Errorf("colstore: segment count %d out of range [1,%d]", len(segs), MaxSegments)
	}
	seen := make(map[string]bool, len(segs))
	dir = make([]Segment, len(segs))
	pos := align(base+int64(headerSize)+int64(len(segs))*entrySize+crcSize, PageAlign)
	for i, sd := range segs {
		if !validName(sd.Name) {
			return 0, nil, fmt.Errorf("colstore: invalid segment name %q", sd.Name)
		}
		if seen[sd.Name] {
			return 0, nil, fmt.Errorf("colstore: duplicate segment name %q", sd.Name)
		}
		seen[sd.Name] = true
		es := sd.Kind.ElemSize()
		if es == 0 {
			return 0, nil, fmt.Errorf("colstore: segment %q: unknown kind %v", sd.Name, sd.Kind)
		}
		if uint64(len(sd.raw)) != sd.Count*uint64(es) {
			return 0, nil, fmt.Errorf("colstore: segment %q: %d bytes for %d %v elements",
				sd.Name, len(sd.raw), sd.Count, sd.Kind)
		}
		dir[i] = Segment{
			Name:   sd.Name,
			Kind:   sd.Kind,
			Count:  sd.Count,
			Offset: uint64(pos),
			Length: uint64(len(sd.raw)),
			CRC:    durable.Checksum(sd.raw),
		}
		pos = align(pos+int64(len(sd.raw)), PageAlign)
	}
	// The section ends where the next aligned thing would begin; the
	// final payload's padding is included so the file length is a
	// whole number of pages past the last segment.
	return pos, dir, nil
}

// WriteSection appends a columnar section to w, which must currently be
// positioned at absolute file offset base (the number of bytes already
// written before the section). It returns the absolute end offset of
// the section and the directory that was written.
func WriteSection(w io.Writer, base int64, segs []SegmentData) (end int64, dir []Segment, err error) {
	end, dir, err = layout(base, segs)
	if err != nil {
		return 0, nil, err
	}

	// Header + directory + directory CRC, assembled in one buffer so the
	// CRC covers exactly the bytes on disk.
	head := make([]byte, headerSize+len(dir)*entrySize+crcSize)
	copy(head[0:8], SectionMagic[:])
	binary.LittleEndian.PutUint16(head[8:10], SectionVersion)
	binary.LittleEndian.PutUint32(head[12:16], uint32(len(dir)))
	binary.LittleEndian.PutUint32(head[16:20], PageAlign)
	for i, sg := range dir {
		e := head[headerSize+i*entrySize:]
		copy(e[0:16], sg.Name)
		binary.LittleEndian.PutUint32(e[16:20], uint32(sg.Kind))
		binary.LittleEndian.PutUint32(e[20:24], uint32(sg.Kind.ElemSize()))
		binary.LittleEndian.PutUint64(e[24:32], sg.Count)
		binary.LittleEndian.PutUint64(e[32:40], sg.Offset)
		binary.LittleEndian.PutUint64(e[40:48], sg.Length)
		binary.LittleEndian.PutUint32(e[48:52], sg.CRC)
	}
	crcAt := len(head) - crcSize
	binary.LittleEndian.PutUint32(head[crcAt:], durable.Checksum(head[:crcAt]))
	if _, err := w.Write(head); err != nil {
		return 0, nil, fmt.Errorf("colstore: write directory: %w", err)
	}

	pos := base + int64(len(head))
	for i, sd := range segs {
		if err := writePad(w, int64(dir[i].Offset)-pos); err != nil {
			return 0, nil, err
		}
		if _, err := w.Write(sd.raw); err != nil {
			return 0, nil, fmt.Errorf("colstore: write segment %q: %w", sd.Name, err)
		}
		pos = int64(dir[i].Offset) + int64(dir[i].Length)
	}
	if err := writePad(w, end-pos); err != nil {
		return 0, nil, err
	}
	return end, dir, nil
}

var zeroPage [PageAlign]byte

// writePad writes n zero bytes.
func writePad(w io.Writer, n int64) error {
	for n > 0 {
		c := n
		if c > PageAlign {
			c = PageAlign
		}
		if _, err := w.Write(zeroPage[:c]); err != nil {
			return fmt.Errorf("colstore: write padding: %w", err)
		}
		n -= c
	}
	return nil
}
