//go:build linux || darwin

package colstore

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map snapshot files.
const mmapSupported = true

// mapFile maps the first size bytes of f read-only and shared, so the
// mapping keeps serving the same bytes even after the file is renamed
// away by an atomic snapshot replacement (the inode stays alive until
// the mapping is released).
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("colstore: mmap: non-positive size %d", size)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("colstore: mmap: size %d overflows int", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("colstore: mmap %s: %w", f.Name(), err)
	}
	return b, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
