package colstore

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"expertfind/internal/durable"
)

// testSegs builds one segment of every kind with deterministic values.
func testSegs(n int) []SegmentData {
	rng := rand.New(rand.NewSource(7))
	f32 := make([]float32, n)
	i32 := make([]int32, n)
	u32 := make([]uint32, n)
	u64 := make([]uint64, n)
	i8 := make([]int8, n)
	u8 := make([]byte, n)
	for i := 0; i < n; i++ {
		f32[i] = rng.Float32()*2 - 1
		i32[i] = rng.Int31() - 1<<30
		u32[i] = rng.Uint32()
		u64[i] = rng.Uint64()
		i8[i] = int8(rng.Intn(256) - 128)
		u8[i] = byte(rng.Intn(256))
	}
	return []SegmentData{
		F32Seg("embs", f32),
		I32Seg("ids", i32),
		U32Seg("flags", u32),
		U64Seg("nbroff", u64),
		I8Seg("qcodes", i8),
		U8Seg("dead", u8),
	}
}

// writeTestFile writes prefix bytes followed by a section and returns
// the path and the section's base offset.
func writeTestFile(t *testing.T, prefix []byte, segs []SegmentData) (path string, base int64) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(prefix)
	base = int64(len(prefix))
	end, _, err := WriteSection(&buf, base, segs)
	if err != nil {
		t.Fatalf("WriteSection: %v", err)
	}
	if int64(buf.Len()) != end {
		t.Fatalf("WriteSection end = %d, wrote %d bytes", end, buf.Len())
	}
	path = filepath.Join(t.TempDir(), "snap.efs")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, base
}

func openAt(t *testing.T, path string, base int64, mode Mode) (*Section, func()) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(f, base, mode)
	if err != nil {
		f.Close()
		t.Fatalf("Open(%v): %v", mode, err)
	}
	return s, func() { s.Close(); f.Close() }
}

func TestRoundTripAllKindsBothModes(t *testing.T) {
	const n = 1500 // > one page of f32, odd enough to exercise padding
	segs := testSegs(n)
	path, base := writeTestFile(t, []byte("gob-payload-prefix"), segs)

	for _, mode := range []Mode{ModeOff, ModeAuto} {
		s, done := openAt(t, path, base, mode)
		if mode == ModeAuto && mmapSupported && !s.Mapped {
			t.Fatalf("ModeAuto did not map on a platform with mmap support")
		}
		if mode == ModeOff && s.Mapped {
			t.Fatalf("ModeOff produced a mapping")
		}

		f32, err := s.Float32s("embs")
		if err != nil {
			t.Fatal(err)
		}
		i32, err := s.Int32s("ids")
		if err != nil {
			t.Fatal(err)
		}
		u32, err := s.Uint32s("flags")
		if err != nil {
			t.Fatal(err)
		}
		u64, err := s.Uint64s("nbroff")
		if err != nil {
			t.Fatal(err)
		}
		i8, err := s.Int8s("qcodes")
		if err != nil {
			t.Fatal(err)
		}
		u8, err := s.Bytes("dead")
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			if want := rng.Float32()*2 - 1; math.Float32bits(f32[i]) != math.Float32bits(want) {
				t.Fatalf("%v f32[%d] = %v, want %v", mode, i, f32[i], want)
			}
			if want := rng.Int31() - 1<<30; i32[i] != want {
				t.Fatalf("%v i32[%d] = %d, want %d", mode, i, i32[i], want)
			}
			if want := rng.Uint32(); u32[i] != want {
				t.Fatalf("%v u32[%d] = %d, want %d", mode, i, u32[i], want)
			}
			if want := rng.Uint64(); u64[i] != want {
				t.Fatalf("%v u64[%d] = %d, want %d", mode, i, u64[i], want)
			}
			if want := int8(rng.Intn(256) - 128); i8[i] != want {
				t.Fatalf("%v i8[%d] = %d, want %d", mode, i, i8[i], want)
			}
			if want := byte(rng.Intn(256)); u8[i] != want {
				t.Fatalf("%v u8[%d] = %d, want %d", mode, i, u8[i], want)
			}
		}
		done()
	}
}

// TestMappedViewsFullCap is the load-bearing safety property: a view
// into the read-only mapping must have cap == len so a consumer append
// reallocates to the heap instead of faulting on the mapping.
func TestMappedViewsFullCap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	segs := testSegs(64)
	path, base := writeTestFile(t, nil, segs)
	s, done := openAt(t, path, base, ModeOn)
	defer done()
	if !s.Mapped {
		t.Fatal("ModeOn section not mapped")
	}

	f32, _ := s.Float32s("embs")
	i32, _ := s.Int32s("ids")
	u8, _ := s.Bytes("dead")
	for _, c := range []struct {
		name     string
		len, cap int
	}{
		{"embs", len(f32), cap(f32)},
		{"ids", len(i32), cap(i32)},
		{"dead", len(u8), cap(u8)},
	} {
		if c.cap != c.len {
			t.Fatalf("segment %q view cap %d != len %d", c.name, c.cap, c.len)
		}
	}
	// The append must not touch the mapping (it would SIGSEGV on
	// PROT_READ memory — the test crashing IS the failure signal).
	grown := append(i32, 42)
	if &grown[0] == &i32[0] {
		t.Fatal("append aliased the mapped view")
	}
}

// TestMaterializedReadsHeap checks the Materialized alias: accessors
// return heap allocations (not views of the mapping) with identical
// bytes, the original section keeps handing out views, and closing the
// alias leaves the original's mapping intact.
func TestMaterializedReadsHeap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	segs := testSegs(256)
	path, base := writeTestFile(t, []byte("hdr"), segs)
	s, done := openAt(t, path, base, ModeOn)
	defer done()

	m := s.Materialized()
	if m.Mapped {
		t.Fatal("Materialized section reports Mapped")
	}
	view, err := s.Int32s("ids")
	if err != nil {
		t.Fatal(err)
	}
	heap, err := m.Int32s("ids")
	if err != nil {
		t.Fatal(err)
	}
	if &view[0] == &heap[0] {
		t.Fatal("Materialized accessor returned a view of the mapping")
	}
	for i := range view {
		if view[i] != heap[i] {
			t.Fatalf("ids[%d]: view %d, heap %d", i, view[i], heap[i])
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close alias: %v", err)
	}
	if !s.Mapped {
		t.Fatal("closing the alias unmapped the original")
	}
	if again, err := s.Float32s("embs"); err != nil || len(again) == 0 {
		t.Fatalf("original section unusable after alias close: %v", err)
	}
}

func TestHeapAndMappedBytesIdentical(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	segs := testSegs(333)
	path, base := writeTestFile(t, []byte{1, 2, 3}, segs)

	sm, doneM := openAt(t, path, base, ModeOn)
	defer doneM()
	sh, doneH := openAt(t, path, base, ModeOff)
	defer doneH()

	mf, _ := sm.Float32s("embs")
	hf, _ := sh.Float32s("embs")
	if len(mf) != len(hf) {
		t.Fatalf("len %d != %d", len(mf), len(hf))
	}
	for i := range mf {
		if math.Float32bits(mf[i]) != math.Float32bits(hf[i]) {
			t.Fatalf("f32[%d]: mapped %x heap %x", i, math.Float32bits(mf[i]), math.Float32bits(hf[i]))
		}
	}
}

func TestVerifySection(t *testing.T) {
	segs := testSegs(100)
	path, base := writeTestFile(t, []byte("prefix"), segs)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, _ := f.Stat()
	end, err := VerifySection(f, path, fi.Size(), base)
	if err != nil {
		t.Fatalf("VerifySection: %v", err)
	}
	if end <= base || end > fi.Size() {
		t.Fatalf("VerifySection end %d outside (%d, %d]", end, base, fi.Size())
	}
}

func TestTornWriteRejected(t *testing.T) {
	segs := testSegs(2000)
	path, base := writeTestFile(t, nil, segs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file ends with alignment padding; find the true end of the
	// last payload so the chop removes real data, not padding.
	end, err := VerifySection(bytes.NewReader(full), path, int64(len(full)), base)
	if err != nil {
		t.Fatal(err)
	}
	// Chop at several depths: inside the last payload, inside the
	// directory, inside the header.
	for _, keep := range []int{int(end) - 100, int(base) + headerSize + 10, int(base) + 5} {
		p := filepath.Join(t.TempDir(), "torn.efs")
		if err := os.WriteFile(p, full[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Open(f, base, ModeAuto)
		f.Close()
		if !errors.Is(err, durable.ErrTruncated) {
			t.Fatalf("keep=%d: got %v, want ErrTruncated", keep, err)
		}
		var ce *durable.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("keep=%d: %v is not a *CorruptError", keep, err)
		}
	}
}

func TestBitFlipsRejected(t *testing.T) {
	segs := testSegs(500)
	path, base := writeTestFile(t, nil, segs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	end, err := VerifySection(bytes.NewReader(full), path, int64(len(full)), base)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the directory, and one deep inside the last
	// payload (end is past the final payload byte, before padding).
	for _, off := range []int64{base + headerSize + 24, end - 64} {
		p := filepath.Join(t.TempDir(), "flip.efs")
		b, _ := os.ReadFile(path)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := durable.CorruptFileByte(p, off, 0x40); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Open(f, base, ModeAuto)
		f.Close()
		if err == nil {
			t.Fatalf("flip at %d: corruption not detected", off)
		}
		var ce *durable.CorruptError
		var ve *durable.VersionError
		if !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("flip at %d: %v is not typed", off, err)
		}
	}
}

func TestFutureVersionRejected(t *testing.T) {
	segs := testSegs(10)
	path, base := writeTestFile(t, nil, segs)
	// version field lives at base+8 (uint16 LE); bump it to 2 and
	// refresh nothing — the dir CRC covers it, so to reach the version
	// check we must recompute... easier: VersionError must win BEFORE
	// the CRC check, which is exactly what a future writer would
	// produce (valid CRC under a layout we cannot parse).
	if err := durable.CorruptFileByte(path, base+8, 0x03); err != nil { // 1 ^ 3 = 2
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = Open(f, base, ModeAuto)
	var ve *durable.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Got != 2 || ve.Max != SectionVersion {
		t.Fatalf("VersionError got=%d max=%d", ve.Got, ve.Max)
	}
}

func TestForeignMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.bin")
	if err := os.WriteFile(path, bytes.Repeat([]byte("notacolumnstore!"), 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = Open(f, 0, ModeAuto)
	if !errors.Is(err, durable.ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestWriterValidation(t *testing.T) {
	ok := []SegmentData{F32Seg("a", []float32{1})}
	cases := []struct {
		name string
		segs []SegmentData
	}{
		{"empty", nil},
		{"dup names", []SegmentData{F32Seg("a", nil), I32Seg("a", nil)}},
		{"bad name", []SegmentData{F32Seg("has space", nil)}},
		{"long name", []SegmentData{F32Seg("aaaaaaaaaaaaaaaaa", nil)}},
		{"hand-rolled mismatch", []SegmentData{{Name: "x", Kind: KindF32, Count: 3, raw: []byte{0}}}},
		{"unknown kind", []SegmentData{{Name: "x", Kind: Kind(99), Count: 0}}},
	}
	for _, c := range cases {
		if _, _, err := WriteSection(&bytes.Buffer{}, 0, c.segs); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, _, err := WriteSection(&bytes.Buffer{}, 0, ok); err != nil {
		t.Errorf("valid segs rejected: %v", err)
	}
}

func TestSectionSizeMatchesWrite(t *testing.T) {
	segs := testSegs(123)
	want, err := SectionSize(77, segs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	end, _, err := WriteSection(&buf, 77, segs)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != want || end != 77+want {
		t.Fatalf("SectionSize %d, wrote %d, end %d", want, buf.Len(), end)
	}
}

func TestParseModes(t *testing.T) {
	for in, want := range map[string]Mode{
		"auto": ModeAuto, "": ModeAuto, "ON": ModeOn, "off": ModeOff, "1": ModeOn, "0": ModeOff,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
}

func TestWrongKindLookup(t *testing.T) {
	path, base := writeTestFile(t, nil, testSegs(8))
	s, done := openAt(t, path, base, ModeOff)
	defer done()
	if _, err := s.Float32s("ids"); err == nil {
		t.Error("kind mismatch not rejected")
	}
	if _, err := s.Int32s("nosuch"); err == nil {
		t.Error("missing segment not rejected")
	}
}

func TestEmptySegmentsRoundTrip(t *testing.T) {
	segs := []SegmentData{F32Seg("embs", nil), I32Seg("ids", []int32{5})}
	path, base := writeTestFile(t, nil, segs)
	for _, mode := range []Mode{ModeOff, ModeAuto} {
		s, done := openAt(t, path, base, mode)
		f32, err := s.Float32s("embs")
		if err != nil || len(f32) != 0 {
			t.Fatalf("%v: empty segment: %v, len %d", mode, err, len(f32))
		}
		i32, err := s.Int32s("ids")
		if err != nil || len(i32) != 1 || i32[0] != 5 {
			t.Fatalf("%v: ids = %v, %v", mode, i32, err)
		}
		done()
	}
}
