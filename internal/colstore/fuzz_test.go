package colstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"expertfind/internal/durable"
)

// FuzzSectionHeader feeds arbitrary bytes to the section parser at an
// arbitrary offset and asserts the invariant the rest of the stack
// relies on: parsing never panics, and every rejection is a typed
// *durable.CorruptError or *durable.VersionError (or an accepted,
// fully-validated section). This mirrors FuzzLoadCorrupt on the
// snapshot container one layer up.
func FuzzSectionHeader(f *testing.F) {
	// Seed with a real section so mutation explores the parsed region.
	var buf bytes.Buffer
	_, _, err := WriteSection(&buf, 0, []SegmentData{
		F32Seg("embs", []float32{1, 2, 3}),
		I32Seg("ids", []int32{4, 5, 6}),
		U64Seg("nbroff", []uint64{0, 3}),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), int64(0))
	f.Add(buf.Bytes()[:headerSize+3], int64(0))
	f.Add(buf.Bytes(), int64(17))
	f.Add([]byte("EFCOLSEG"), int64(0))
	hdr := make([]byte, headerSize)
	copy(hdr, SectionMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], 9) // future version
	f.Add(hdr, int64(0))

	f.Fuzz(func(t *testing.T, data []byte, off int64) {
		s, err := OpenReaderAt(bytes.NewReader(data), "<fuzz>", int64(len(data)), off)
		if err == nil {
			// Accepted sections must behave: every declared segment is
			// reachable through its typed accessor without panicking.
			for _, sg := range s.Segments() {
				switch sg.Kind {
				case KindF32:
					s.Float32s(sg.Name)
				case KindI32:
					s.Int32s(sg.Name)
				case KindU32:
					s.Uint32s(sg.Name)
				case KindU64:
					s.Uint64s(sg.Name)
				case KindI8:
					s.Int8s(sg.Name)
				case KindU8:
					s.Bytes(sg.Name)
				}
			}
			return
		}
		var ce *durable.CorruptError
		var ve *durable.VersionError
		if !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("untyped parse error: %T %v", err, err)
		}
	})
}
