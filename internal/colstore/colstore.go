// Package colstore implements the mmap-able columnar section that makes
// snapshots servable without heap-decoding them: a directory of
// fixed-width, page-aligned, individually CRC-32C-checked segments
// (float32 embedding rows, int32 CSR adjacency, int8 quantized codes,
// ...) appended after the gob payload of an EFSNAP v2 snapshot.
//
// The layout is built for two readers with identical semantics:
//
//   - the mmap reader maps the whole snapshot file read-only and hands
//     out zero-copy typed views into the mapping, so a 1M-paper
//     embedding matrix costs address space, not RSS — the OS page cache
//     faults in exactly the rows queries touch;
//   - the heap reader materialises each segment into a fresh allocation
//     with the same bytes, for platforms without mmap, for -mmap=off,
//     and for streams that never touch a filesystem.
//
// Both paths verify every segment's CRC before a single element is
// interpreted, via bounded-buffer file reads — never through the
// mapping, so validation does not fault the whole file resident.
//
// On-disk layout of a section starting at byte `off` of the file:
//
//	off+0    8   magic "EFCOLSEG"
//	off+8    2   section format version (uint16 LE)
//	off+10   2   reserved (zero)
//	off+12   4   segment count (uint32 LE)
//	off+16   4   alignment in bytes (uint32 LE; PageAlign when written)
//	off+20       segment directory: count fixed 64-byte entries
//	...      4   CRC-32C over header+directory (uint32 LE)
//	<pad to alignment>
//	         segment 0 payload, zero-padded to alignment
//	         segment 1 payload, zero-padded to alignment
//	         ...
//
// One directory entry (64 bytes, all LE):
//
//	0   16  name, NUL-padded ASCII
//	16  4   kind (Kind)
//	20  4   element size in bytes (must match kind)
//	24  8   element count (uint64)
//	32  8   absolute file offset of the payload (uint64, aligned)
//	40  8   payload length in bytes (uint64, = count * elemSize)
//	48  4   CRC-32C of the payload bytes
//	52  12  reserved (zero)
//
// All multi-byte values are little-endian on disk; on a little-endian
// host (every platform this project targets) typed views reinterpret
// the bytes in place, and a big-endian host falls back to a portable
// per-element decode into heap memory.
//
// Every failure mode is a typed error from internal/durable: a foreign
// or damaged header is a *durable.CorruptError (wrapping ErrBadMagic,
// ErrTruncated or ErrChecksum with the byte offset of the damage), and
// a future section version is a *durable.VersionError — the same
// taxonomy the container and WAL use, so callers discriminate damage
// classes uniformly.
package colstore

import (
	"errors"
	"fmt"
	"strings"
)

// SectionMagic identifies a columnar section.
var SectionMagic = [8]byte{'E', 'F', 'C', 'O', 'L', 'S', 'E', 'G'}

// ErrNoMmap reports that mapping is unavailable: either this platform
// build has no mmap support, or the caller asked for a mapping from a
// source that is not a file. ModeAuto falls back to heap
// materialisation; ModeOn surfaces this error.
var ErrNoMmap = errors.New("colstore: mmap not available")

// SectionVersion is the newest section format this build writes and
// understands.
const SectionVersion = 1

// PageAlign is the alignment of every segment payload: one common page
// size, so mapped views are page-aligned (and therefore aligned for any
// element type) and a segment never shares a page with the directory.
const PageAlign = 4096

const (
	headerSize = 20 // magic + version + reserved + count + align
	entrySize  = 64
	crcSize    = 4
	// MaxSegments bounds the directory so a corrupt count cannot drive
	// an absurd allocation before the CRC is checked.
	MaxSegments = 1024
	// MaxNameLen is the longest segment name the directory stores.
	MaxNameLen = 16
)

// Kind is the element type of a segment.
type Kind uint32

// The element kinds. Values are part of the on-disk format.
const (
	KindF32 Kind = 1 // float32
	KindI32 Kind = 2 // int32
	KindU32 Kind = 3 // uint32
	KindU64 Kind = 4 // uint64
	KindI8  Kind = 5 // int8
	KindU8  Kind = 6 // uint8 / raw bytes
)

// ElemSize returns the on-disk element width of k, or 0 for an unknown
// kind.
func (k Kind) ElemSize() int {
	switch k {
	case KindF32, KindI32, KindU32:
		return 4
	case KindU64:
		return 8
	case KindI8, KindU8:
		return 1
	}
	return 0
}

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindF32:
		return "f32"
	case KindI32:
		return "i32"
	case KindU32:
		return "u32"
	case KindU64:
		return "u64"
	case KindI8:
		return "i8"
	case KindU8:
		return "u8"
	}
	return fmt.Sprintf("Kind(%d)", uint32(k))
}

// Segment describes one column in a section's directory.
type Segment struct {
	Name   string
	Kind   Kind
	Count  uint64 // elements
	Offset uint64 // absolute file offset of the payload
	Length uint64 // payload bytes (= Count * ElemSize)
	CRC    uint32 // CRC-32C of the payload bytes
}

// Mode selects how a section's segments are materialised.
type Mode int

const (
	// ModeAuto maps the file when the platform supports it and falls
	// back to heap materialisation when it does not.
	ModeAuto Mode = iota
	// ModeOn requires the mapping: opening fails where mmap is
	// unavailable instead of silently burning heap.
	ModeOn
	// ModeOff always materialises segments on the heap.
	ModeOff
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeOn:
		return "on"
	case ModeOff:
		return "off"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the -mmap flag grammar: auto, on, off.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return ModeAuto, nil
	case "on", "true", "1":
		return ModeOn, nil
	case "off", "false", "0":
		return ModeOff, nil
	}
	return 0, fmt.Errorf("colstore: unknown mmap mode %q (want auto, on, or off)", s)
}

// align rounds n up to the next multiple of a (a must be a power of two).
func align(n int64, a int64) int64 { return (n + a - 1) &^ (a - 1) }

// AlignUp rounds n up to the next PageAlign boundary — the end of a
// written section file for a section whose payloads end at n (the
// writer zero-pads the final segment to a page boundary).
func AlignUp(n int64) int64 { return align(n, PageAlign) }

// validName reports whether a segment name fits the directory: 1-16
// printable ASCII bytes, no NUL.
func validName(s string) bool {
	if len(s) == 0 || len(s) > MaxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}
