// Package cli holds the small pieces shared by the command-line tools:
// graph loading from a JSON file or a named synthetic preset.
package cli

import (
	"fmt"
	"os"
	"strings"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

// LoadGraph returns the heterogeneous graph from a file (when file is
// non-empty) or from a synthetic preset ("aminer", "dblp", "acm") at the
// given paper count (0 for the preset default). Files ending in .txt are
// parsed as the real Aminer citation-network format; everything else as
// the JSON written by datagen.
func LoadGraph(file, preset string, papers int) (*hetgraph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(file, ".txt") {
			g, _, err := hetgraph.ReadAminer(f)
			return g, err
		}
		return hetgraph.ReadJSON(f)
	}
	cfg, err := PresetConfig(preset, papers)
	if err != nil {
		return nil, err
	}
	return dataset.Generate(cfg).Graph, nil
}

// PresetConfig maps a preset name to its dataset configuration.
func PresetConfig(preset string, papers int) (dataset.Config, error) {
	switch preset {
	case "aminer":
		return dataset.AminerSim(papers), nil
	case "dblp":
		return dataset.DBLPSim(papers), nil
	case "acm":
		return dataset.ACMSim(papers), nil
	default:
		return dataset.Config{}, fmt.Errorf("unknown preset %q (want aminer, dblp, or acm)", preset)
	}
}
