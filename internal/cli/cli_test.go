package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/hetgraph"
)

func TestPresetConfig(t *testing.T) {
	for _, name := range []string{"aminer", "dblp", "acm"} {
		cfg, err := PresetConfig(name, 123)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.NumPapers != 123 {
			t.Errorf("%s: papers = %d", name, cfg.NumPapers)
		}
	}
	if _, err := PresetConfig("nope", 0); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestLoadGraphFromPreset(t *testing.T) {
	g, err := LoadGraph("", "aminer", 120)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodesOfType(hetgraph.Paper) != 120 {
		t.Errorf("papers = %d", g.NumNodesOfType(hetgraph.Paper))
	}
}

func TestLoadGraphFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	ds := dataset.Generate(dataset.AminerSim(60))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Graph.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := LoadGraph(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != ds.Graph.NumNodes() {
		t.Error("loaded graph differs")
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.json"), "", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadGraphFromAminerFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.txt")
	sample := "#*First Paper\n#@Ann Author\n#index1\n\n#*Second Paper\n#@Ben Writer\n#index2\n#%1\n"
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodesOfType(hetgraph.Paper) != 2 || g.NumEdgesOfType(hetgraph.Cite) != 1 {
		t.Errorf("aminer load wrong: %+v", g.Stats())
	}
	if !strings.Contains(g.Label(g.NodesOfType(hetgraph.Paper)[0]), "First Paper") {
		t.Error("labels lost")
	}
}
